// Admission control and result caching: every query endpoint answers
// through s.plan, which composes the epoch-keyed cache (outside) with the
// weighted admission gate (inside). Cache hits and coalesced waiters never
// consume an admission slot — only searches that actually run do — so under
// a spike of popular queries the cache absorbs most of the load and the
// gate sheds the excess early with 429 + Retry-After instead of letting
// latency collapse for everyone.
package main

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"transit"
	"transit/internal/admit"
	"transit/internal/live"
)

// plan answers req against snap — a snapshot of the named network —
// through cache and gate. The snapshot is pinned by the caller (one
// Registry.Snapshot() load per request, under a catalog handle), and
// (network, epoch) keys the cache: a delay batch bumps that network's
// epoch and every cached answer for it stops matching instantly, while
// other tenants' entries are untouched.
//
// When tr is non-nil the request is traced: its Effort block rides on
// Request.Options (cache-key-neutral — CacheKey ignores Options), the
// gate reports the queue wait, and the search is timed. The stage
// histograms are fed either way. Cache.Plan runs the fill closure on this
// goroutine, so the closure may write tr without synchronization; for
// coalesced requests the closure never runs and the whole wait on the
// leader lands in the cache-lookup stage.
func (s *server) plan(ctx context.Context, network string, snap *live.Snapshot, req transit.Request, tr *qtrace) (*transit.Result, error) {
	planStart := time.Now()
	if tr != nil {
		tr.epoch = snap.Epoch
		req.Options.Effort = &tr.effort
	}
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		release, wait, err := s.gate.AcquireWait(ctx, admitWeight(req))
		if tr != nil {
			tr.queueWait = wait
		}
		s.obs.queueWait.ObserveDuration(wait)
		if err != nil {
			var ov *admit.Overload
			if errors.As(err, &ov) {
				return nil, transit.NewError(transit.CodeOverloaded,
					"server overloaded: too many concurrent searches", err)
			}
			return nil, err // the queued caller itself went away
		}
		defer release()
		if s.planHook != nil {
			s.planHook()
		}
		searchStart := time.Now()
		res, err := snap.Net.Plan(ctx, req)
		d := time.Since(searchStart)
		if tr != nil {
			tr.search = d
		}
		s.obs.searchDur.ObserveDuration(d)
		return res, err
	}
	res, outcome, err := s.cache.Plan(ctx, network, snap.Epoch, req, do)
	if tr != nil {
		tr.outcome = outcome
		lookup := time.Since(planStart) - tr.queueWait - tr.search
		if lookup < 0 {
			lookup = 0
		}
		tr.cacheLookup = lookup
		s.obs.cacheLookup.ObserveDuration(lookup)
		if tr.effort.Rounds.Load() > 0 {
			s.obs.settled.Observe(float64(tr.effort.LabelsSettled.Load()))
		}
	}
	return res, err
}

// admitWeight prices a request in admission units: a matrix batch runs one
// search per source, everything else is a single search. The gate clamps
// to its capacity, so an oversized batch still admits (alone) rather than
// deadlocking.
func admitWeight(req transit.Request) int64 {
	if req.Kind == transit.KindMatrix && len(req.Sources) > 1 {
		return int64(len(req.Sources))
	}
	return 1
}

// setRetryAfter adds the Retry-After back-off header when err carries an
// admission-gate rejection (whole seconds, at least one — the HTTP form of
// *Overload.RetryAfter).
func setRetryAfter(w http.ResponseWriter, err error) {
	var ov *admit.Overload
	if !errors.As(err, &ov) {
		return
	}
	secs := int(math.Ceil(ov.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

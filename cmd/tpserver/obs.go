// Observability wiring: the server's obs.Registry (histogram families +
// legacy flat series on GET /metrics), per-query traces (X-Trace-Id,
// Server-Timing, ?debug=trace), and the structured slow-query log. See
// docs/OBSERVABILITY.md for the full contract.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"transit"
	apiv1 "transit/api/v1"
	"transit/internal/admit"
	"transit/internal/catalog"
	"transit/internal/core"
	"transit/internal/obs"
)

// serverObs owns the metric registry and every histogram the request path
// feeds. Registration happens once in newServer/newMux; after that the
// write side is lock-free atomic increments.
type serverObs struct {
	reg *obs.Registry

	// Per-endpoint end-to-end latency, registered by server.count.
	endpointDur map[string]*obs.Histogram
	// Per-Request.Kind end-to-end latency (full handler time).
	kindDur map[transit.Kind]*obs.Histogram

	queueWait   *obs.Histogram // admission-gate queue time
	searchDur   *obs.Histogram // Plan execution inside the gate
	cacheLookup *obs.Histogram // plan time outside queue+search
	settled     *obs.Histogram // labels settled per executed search

	rt runtimeSampler
}

func newServerObs(s *server) *serverObs {
	r := obs.NewRegistry()
	o := &serverObs{
		reg:         r,
		endpointDur: make(map[string]*obs.Histogram),
		kindDur:     make(map[transit.Kind]*obs.Histogram),
		queueWait: r.NewHistogram("tpserver_queue_wait_seconds",
			"Time requests spent queued at the admission gate (zero on the uncontended fast path).",
			obs.DurationBounds()),
		searchDur: r.NewHistogram("tpserver_search_seconds",
			"Query execution time inside the admission gate (cache misses only; hits never search).",
			obs.DurationBounds()),
		cacheLookup: r.NewHistogram("tpserver_cache_lookup_seconds",
			"Plan time outside queueing and search: cache probe, and for hits/coalesced requests the whole answer.",
			obs.DurationBounds()),
		settled: r.NewHistogram("tpserver_search_settled_labels",
			"Labels settled per executed search (cache hits excluded).",
			obs.CountBounds()),
	}
	for _, kind := range transit.Kinds() {
		o.kindDur[kind] = r.NewLabeledHistogram("tpserver_query_duration_seconds",
			"End-to-end query handler latency by request kind.",
			"kind", string(kind), obs.DurationBounds())
	}

	// The pre-histogram flat series keep their exact names and integer
	// rendering so existing dashboards, CI greps and the bench scraper stay
	// valid across the /metrics rewrite.
	r.Gauge("tpserver_snapshot_epoch", "Epoch of the snapshot currently served.",
		func() float64 { return float64(s.defaultLive().Epoch) })
	r.Gauge("tpserver_snapshot_preprocessed", "Whether the served snapshot has a distance table (0/1).",
		func() float64 { return float64(b2i(s.defaultLive().Preprocessed)) })
	r.Counter("tpserver_updates_total", "Applied delay batches.",
		func() float64 { return float64(s.defaultLive().UpdatesTotal) })
	r.Gauge("tpserver_update_last_seconds", "Duration of the last delay batch apply.",
		func() float64 { return s.defaultLive().LastUpdate.Seconds() })
	r.Counter("tpserver_connections_retimed_total", "Connections retimed by delay batches.",
		func() float64 { return float64(s.defaultLive().ConnsRetimed) })
	r.Counter("tpserver_connections_cancelled_total", "Connections cancelled by delay batches.",
		func() float64 { return float64(s.defaultLive().ConnsCancelled) })
	r.Counter("tpserver_repreprocess_total", "Completed distance-table re-preprocessing runs.",
		func() float64 { return float64(s.defaultLive().ReprocessedTotal) })
	r.Counter("tpserver_repreprocess_errors_total", "Failed re-preprocessing runs.",
		func() float64 { return float64(s.defaultLive().ReprocessErrors) })
	r.Counter("dtable_repairs_total", "Re-preprocessing runs answered by incremental row repair.",
		func() float64 { return float64(s.defaultLive().RepairsTotal) })
	r.Counter("dtable_rows_repaired_total", "Distance-table rows recomputed by repairs.",
		func() float64 { return float64(s.defaultLive().RowsRepairedTotal) })
	r.Counter("dtable_full_rebuilds_total", "Re-preprocessing runs that fell back to a full rebuild.",
		func() float64 { return float64(s.defaultLive().FullRebuildsTotal) })
	r.Gauge("dtable_repreprocess_last_seconds", "Duration of the last repair or rebuild.",
		func() float64 { return s.defaultLive().LastReprocess.Seconds() })
	r.Counter("dtable_repair_seconds_total", "Cumulative wall-clock time spent in repairs and rebuilds.",
		func() float64 { return s.defaultLive().RepairDuration.Seconds() })
	r.Gauge("tpserver_last_epoch_apply_timestamp_seconds",
		"Unix time of the last epoch-advancing delay batch (0 before the first).",
		func() float64 {
			t := s.defaultLive().LastApply
			if t.IsZero() {
				return 0
			}
			return float64(t.UnixNano()) / 1e9
		})
	r.Counter("tpserver_persist_total", "Epoch checkpoints written to the -persist file.",
		func() float64 { return float64(s.defaultLive().PersistsTotal) })
	r.Counter("tpserver_persist_errors_total", "Failed persistence checkpoints.",
		func() float64 { return float64(s.defaultLive().PersistErrors) })
	r.Counter("tpserver_persist_failures_total",
		"Failed persistence checkpoints (alias of tpserver_persist_errors_total for the reliability dashboards).",
		func() float64 { return float64(s.defaultLive().PersistErrors) })
	r.Counter("tpserver_wal_appends_total",
		"Delay batches journaled and fsynced before their ack.",
		func() float64 { return float64(s.defaultLive().WalAppends) })
	r.Counter("tpserver_wal_append_errors_total",
		"Journal appends that failed; the batch was rejected with 503, not lost.",
		func() float64 { return float64(s.defaultLive().WalAppendErrors) })
	r.Counter("tpserver_wal_replayed_batches_total",
		"Journaled batches replayed on top of the persisted checkpoint at boot.",
		func() float64 { return float64(s.defaultLive().WalReplayed) })
	r.Gauge("tpserver_wal_size_bytes",
		"Current write-ahead journal size (0 when journaling is off).",
		func() float64 { return float64(s.defaultLive().WalBytes) })
	r.Counter("tpserver_repair_timeouts_total",
		"Background table repairs abandoned by the -repair-timeout watchdog for a full rebuild.",
		func() float64 { return float64(s.defaultLive().RepairTimeouts) })
	r.Counter("tpserver_panics_total",
		"Handler panics recovered by the request fence (each answered with a typed 500).",
		func() float64 { return float64(s.panics.Load()) })
	r.Gauge("tpserver_ready",
		"Whether this instance is accepting traffic (1 ready; 0 starting or draining).",
		func() float64 { return float64(b2i(s.ready.Load() == readyServing)) })
	r.Counter("tpserver_queries_cancelled_total", "Queries abandoned mid-flight (client disconnect or deadline).",
		func() float64 { return float64(s.cancelled.Load()) })
	r.Gauge("tpserver_inflight", "Admitted search weight currently running.",
		func() float64 { return float64(s.gate.Inflight()) })
	r.Gauge("tpserver_admit_queued", "Requests waiting for an admission slot.",
		func() float64 { return float64(s.gate.Queued()) })
	r.Counter("tpserver_admitted_total", "Granted admissions.",
		func() float64 { return float64(s.gate.Admitted()) })
	r.Counter("tpserver_shed_total", "Requests shed by admission control.",
		func() float64 { return float64(s.gate.Shed()) })
	r.Counter("tpserver_cache_hits_total", "Result-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.Counter("tpserver_cache_misses_total", "Result-cache misses (fills).",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.Counter("tpserver_cache_coalesced_total", "Requests that joined an in-flight identical fill.",
		func() float64 { return float64(s.cache.Stats().Coalesced) })
	r.Gauge("tpserver_cache_entries", "Result-cache entries stored.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	r.Gauge("tpserver_cache_bytes", "Approximate result bytes stored in the cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	// Replication series (docs/REPLICATION.md). Registered unconditionally
	// — the accessors are nil-safe and report zero on a server with no
	// replication role — so dashboards can use one query across the fleet.
	r.Gauge("tpserver_replication_lag_epochs",
		"Epochs this replica trails its updater (0 on an updater or while the lag is unknown; see /readyz for syncing).",
		func() float64 { lag, _ := s.follower.Lag(); return float64(lag) })
	r.Gauge("tpserver_replication_connected_replicas",
		"Stream subscribers currently connected to this updater.",
		func() float64 { return float64(s.pub.Subscribers()) })
	r.Counter("tpserver_replication_deltas_sent_total",
		"Epoch deltas written to replica streams (backlog replays included).",
		func() float64 { return float64(s.pub.DeltasSent()) })
	r.Counter("tpserver_replication_deltas_applied_total",
		"Stream deltas this replica applied locally.",
		func() float64 { return float64(s.follower.DeltasApplied()) })
	r.Counter("tpserver_replication_snapshot_fetches_total",
		"Full-snapshot transfers: served to replicas (updater) or fetched for cold boot/resync (replica).",
		func() float64 { return float64(s.pub.SnapshotsServed() + s.follower.SnapshotFetches()) })
	r.Counter("tpserver_replication_reconnects_total",
		"Times this replica re-established its stream after a break.",
		func() float64 { return float64(s.follower.Reconnects()) })
	r.Counter("tpserver_replication_divergences_total",
		"Deltas whose touched-set disagreed with the local apply; each one forced a full resync.",
		func() float64 { return float64(s.follower.Divergences()) })
	r.Counter("tpserver_workspace_pool_gets_total", "Search workspaces checked out of the pool.",
		func() float64 { gets, _ := core.PoolStats(); return float64(gets) })
	r.Counter("tpserver_workspace_pool_puts_total", "Search workspaces returned to the pool.",
		func() float64 { _, puts := core.PoolStats(); return float64(puts) })

	// Catalog-wide lifecycle counters, plus one network="…" labelled series
	// per manifest tenant. Tenants are known at construction, so every
	// series registers exactly once; the sample closures read the catalog's
	// bookkeeping (last-known values for evicted tenants) and never force a
	// load.
	r.Gauge("tpserver_catalog_networks", "Networks in the serving catalog.",
		func() float64 { return float64(s.cat.Metrics().Networks) })
	r.Gauge("tpserver_catalog_resident", "Catalog networks currently loaded.",
		func() float64 { return float64(s.cat.Metrics().Resident) })
	r.Gauge("tpserver_catalog_resident_bytes", "Summed snapshot bytes of the resident networks.",
		func() float64 { return float64(s.cat.Metrics().ResidentBytes) })
	r.Counter("tpserver_catalog_loads_total", "Tenant snapshot loads (cold and reload).",
		func() float64 { return float64(s.cat.Metrics().Loads) })
	r.Counter("tpserver_catalog_evictions_total", "Tenants evicted under the memory budget.",
		func() float64 { return float64(s.cat.Metrics().Evictions) })
	r.Counter("tpserver_catalog_load_errors_total", "Failed tenant loads.",
		func() float64 { return float64(s.cat.Metrics().LoadErrors) })
	r.Counter("tpserver_catalog_load_seconds_total", "Cumulative wall-clock time spent loading tenants.",
		func() float64 { return s.cat.Metrics().LoadDuration.Seconds() })
	for _, name := range s.cat.Names() {
		name := name
		net := func() catalog.NetworkMetrics { m, _ := s.cat.NetworkMetrics(name); return m }
		r.LabeledGauge("tpserver_network_epoch", "Delay epoch per catalog network (frozen while evicted).",
			"network", name, func() float64 { return float64(net().Live.Epoch) })
		r.LabeledGauge("tpserver_network_resident", "Whether the network is currently loaded (0/1).",
			"network", name, func() float64 { return float64(b2i(net().Resident)) })
		r.LabeledGauge("tpserver_network_snapshot_bytes", "Snapshot bytes charged against the memory budget while resident.",
			"network", name, func() float64 { return float64(net().SizeBytes) })
		r.LabeledCounter("tpserver_network_updates_total", "Applied delay batches per network.",
			"network", name, func() float64 { return float64(net().Live.UpdatesTotal) })
		r.LabeledCounter("tpserver_network_loads_total", "Snapshot loads per network.",
			"network", name, func() float64 { return float64(net().Loads) })
		r.LabeledCounter("tpserver_network_evictions_total", "Evictions per network.",
			"network", name, func() float64 { return float64(net().Evictions) })
		r.LabeledCounter("tpserver_network_requests_total", "HTTP requests answered per network.",
			"network", name, func() float64 {
				if c, ok := s.netHits[name]; ok {
					return float64(c.Load())
				}
				return 0
			})
	}

	// Go runtime series. One ReadMemStats per scrape (cached across the
	// gauges of a single scrape by runtimeSampler).
	r.Gauge("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Gauge("go_heap_alloc_bytes", "Heap bytes allocated and still in use.",
		func() float64 { return float64(o.rt.get().HeapAlloc) })
	r.Gauge("go_heap_objects", "Live heap objects.",
		func() float64 { return float64(o.rt.get().HeapObjects) })
	r.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(o.rt.get().PauseTotalNs) / 1e9 })
	r.Counter("go_gc_runs_total", "Completed GC cycles.",
		func() float64 { return float64(o.rt.get().NumGC) })
	return o
}

// endpointSeries registers the endpoint's request counter and latency
// histogram (once, at mux construction) and returns the histogram.
func (o *serverObs) endpointSeries(endpoint string, hits *atomic.Uint64) *obs.Histogram {
	o.reg.LabeledCounter("tpserver_requests_total", "HTTP requests by endpoint.",
		"endpoint", endpoint, func() float64 { return float64(hits.Load()) })
	h := o.reg.NewLabeledHistogram("tpserver_request_duration_seconds",
		"End-to-end HTTP request latency by endpoint.",
		"endpoint", endpoint, obs.DurationBounds())
	o.endpointDur[endpoint] = h
	return h
}

// runtimeSampler caches one runtime.MemStats read for a short window so a
// scrape touching several runtime gauges pays for a single ReadMemStats.
type runtimeSampler struct {
	mu   sync.Mutex
	at   time.Time
	last runtime.MemStats
}

func (rs *runtimeSampler) get() runtime.MemStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if now := time.Now(); now.Sub(rs.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&rs.last)
		rs.at = now
	}
	return rs.last
}

// qtrace accumulates one query's stage timings and effort counters. It is
// written only from the request's own goroutine (Cache.Plan runs the fill
// closure synchronously on the filler's goroutine), so fields need no
// synchronization; the Effort block itself is atomic because a matrix or
// parallel search fans out under it.
type qtrace struct {
	id      string
	kind    transit.Kind
	network string
	epoch   uint64
	start   time.Time

	queueWait   time.Duration
	search      time.Duration
	cacheLookup time.Duration
	encode      time.Duration

	outcome admit.Outcome
	effort  transit.SearchEffort
	debug   bool // ?debug=trace: return the breakdown inline
}

// traceNonce makes trace IDs unique across server restarts; traceSeq
// across requests of one process.
var (
	traceNonce = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	traceSeq atomic.Uint64
)

// traceIDPattern: an inbound X-Trace-Id is honored when it is short and
// header-safe, so callers can stitch server traces into their own.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// beginTrace starts a query trace: assigns (or adopts) the trace ID, sets
// the X-Trace-Id response header immediately — error responses carry it
// too — and notes whether the client asked for the inline breakdown.
func (s *server) beginTrace(w http.ResponseWriter, r *http.Request, kind transit.Kind) *qtrace {
	id := sanitizeTraceID(r.Header.Get("X-Trace-Id"))
	if id == "" {
		id = fmt.Sprintf("%s-%x", traceNonce, traceSeq.Add(1))
	}
	w.Header().Set("X-Trace-Id", id)
	return &qtrace{
		id:    id,
		kind:  kind,
		start: time.Now(),
		debug: r.URL.Query().Get("debug") == "trace",
	}
}

// serverTiming renders the stage timings as a Server-Timing header value
// (durations in milliseconds, RFC 8941 ordering: stages in request order).
func (t *qtrace) serverTiming() string {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return fmt.Sprintf("queue;dur=%.3f, cache;dur=%.3f, search;dur=%.3f, encode;dur=%.3f",
		ms(t.queueWait), ms(t.cacheLookup), ms(t.search), ms(t.encode))
}

// wire renders the trace as the ?debug=trace response block.
func (t *qtrace) wire() *apiv1.Trace {
	tr := &apiv1.Trace{
		TraceID:       t.id,
		Network:       t.network,
		Epoch:         t.epoch,
		Cache:         t.outcome.String(),
		QueueWaitMS:   float64(t.queueWait.Microseconds()) / 1000,
		CacheLookupMS: float64(t.cacheLookup.Microseconds()) / 1000,
		SearchMS:      float64(t.search.Microseconds()) / 1000,
		EncodeMS:      float64(t.encode.Microseconds()) / 1000,
		TotalMS:       float64(time.Since(t.start).Microseconds()) / 1000,
	}
	if snap := t.effort.Snapshot(); snap.Rounds > 0 {
		tr.Effort = &snap
	}
	return tr
}

// finishQuery closes out a traced query: per-kind latency histogram, and
// the slow-query log line when the handler exceeded -slow-query. outcome
// is "ok" or the transit error code of the failure.
func (s *server) finishQuery(t *qtrace, outcome string) {
	total := time.Since(t.start)
	if h, ok := s.obs.kindDur[t.kind]; ok {
		h.ObserveDuration(total)
	}
	if s.slowQuery <= 0 || total < s.slowQuery {
		return
	}
	eff := t.effort.Snapshot()
	s.logger.Warn("slow query",
		"trace_id", t.id,
		"kind", string(t.kind),
		"network", t.network,
		"epoch", t.epoch,
		"cache", t.outcome.String(),
		"outcome", outcome,
		"total_ms", float64(total.Microseconds())/1000,
		"queue_wait_ms", float64(t.queueWait.Microseconds())/1000,
		"cache_lookup_ms", float64(t.cacheLookup.Microseconds())/1000,
		"search_ms", float64(t.search.Microseconds())/1000,
		"encode_ms", float64(t.encode.Microseconds())/1000,
		"conns_scanned", eff.ConnsScanned,
		"labels_settled", eff.LabelsSettled,
		"pq_pops", eff.PQPops,
		"rounds", eff.Rounds,
	)
}

// newLogger builds the process logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("tpserver: unknown -log-format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

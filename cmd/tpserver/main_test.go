package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"transit"
)

func testServer(t *testing.T) (*server, *http.ServeMux) {
	t.Helper()
	n, err := transit.Generate("oahu", 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{net: n, threads: 1}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stations", s.stations)
	mux.HandleFunc("GET /arrival", s.arrival)
	mux.HandleFunc("GET /profile", s.profile)
	mux.HandleFunc("GET /journey", s.journey)
	return s, mux
}

func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func TestStationsEndpoint(t *testing.T) {
	s, mux := testServer(t)
	rec := get(t, mux, "/stations")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out []stationJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != s.net.NumStations() {
		t.Fatalf("stations = %d, want %d", len(out), s.net.NumStations())
	}
	if out[0].ID != 0 || out[0].Name == "" {
		t.Fatalf("station 0 malformed: %+v", out[0])
	}
}

func TestArrivalEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := get(t, mux, "/arrival?from=0&to=5&at=08:15")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["reachable"] != true {
		t.Fatalf("response: %v", out)
	}
	if _, ok := out["arrive"].(string); !ok {
		t.Fatalf("no arrive field: %v", out)
	}
	// Bad inputs.
	for _, url := range []string{
		"/arrival?from=0&to=5",              // missing at
		"/arrival?from=0&to=99999&at=08:00", // bad station
		"/arrival?from=x&to=5&at=08:00",     // non-numeric
		"/arrival?from=0&to=5&at=27:99",     // bad time
	} {
		if rec := get(t, mux, url); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := get(t, mux, "/profile?from=0&to=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Connections []struct {
			Depart  string `json:"depart"`
			Arrive  string `json:"arrive"`
			Minutes int    `json:"minutes"`
		} `json:"connections"`
		QueryMS float64 `json:"query_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Connections) == 0 {
		t.Fatal("no connections returned")
	}
	for _, c := range out.Connections {
		if c.Minutes <= 0 || c.Depart == "" || c.Arrive == "" {
			t.Fatalf("malformed connection: %+v", c)
		}
	}
}

func TestJourneyEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := get(t, mux, "/journey?from=0&to=7&at=08:00")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Transfers int `json:"transfers"`
		Legs      []struct {
			Train  string `json:"train"`
			From   string `json:"from"`
			To     string `json:"to"`
			Depart string `json:"depart"`
			Arrive string `json:"arrive"`
		} `json:"legs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Legs) == 0 || out.Transfers != len(out.Legs)-1 {
		t.Fatalf("journey malformed: %+v", out)
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := load("", "", "", 0); err == nil {
		t.Fatal("empty source spec accepted")
	}
	if _, err := load("", "", "oahu", 0.05); err != nil {
		t.Fatalf("generate source failed: %v", err)
	}
	if _, err := load("/nonexistent/file.tt", "", "", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestArrivalUnreachable(t *testing.T) {
	// A two-station builder network where B never connects back to A.
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 1)
	bb := tb.AddStation("B", 1)
	if err := tb.AddTrain("t", []transit.StationID{a, bb}, 480, []transit.Ticks{10}, 0); err != nil {
		t.Fatal(err)
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := &server{net: n, threads: 1}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /arrival", s.arrival)
	rec := get(t, mux, fmt.Sprintf("/arrival?from=%d&to=%d&at=08:00", bb, a))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["reachable"] != false {
		t.Fatalf("unreachable pair reported reachable: %v", out)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"transit"
	"transit/internal/live"
)

func serverFor(t *testing.T, n *transit.Network) (*server, *http.ServeMux) {
	t.Helper()
	s := newServer(live.NewRegistry(n, live.Config{Policy: live.ServeUnpruned}), 1)
	return s, newMux(s)
}

func testServer(t *testing.T) (*server, *http.ServeMux) {
	t.Helper()
	n, err := transit.Generate("oahu", 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	return serverFor(t, n)
}

// hourlyNetwork is a deterministic two-station network: trains "h" leave A
// hourly 06:00–22:00 and reach B 30 minutes later.
func hourlyNetwork(t testing.TB) *transit.Network {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	for h := 6; h <= 22; h++ {
		if err := tb.AddTrain(fmt.Sprintf("h%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60), []transit.Ticks{30}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func post(t *testing.T, mux *http.ServeMux, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func arrivalAt(t *testing.T, mux *http.ServeMux, from, to int, at string) string {
	t.Helper()
	rec := get(t, mux, fmt.Sprintf("/arrival?from=%d&to=%d&at=%s", from, to, at))
	if rec.Code != http.StatusOK {
		t.Fatalf("arrival status %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["reachable"] != true {
		t.Fatalf("unreachable: %v", out)
	}
	return out["arrive"].(string)
}

func TestStationsEndpoint(t *testing.T) {
	s, mux := testServer(t)
	rec := get(t, mux, "/stations")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out []stationJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	want := s.cat.Resident(s.defaultNet).Snapshot().Net.NumStations()
	if len(out) != want {
		t.Fatalf("stations = %d, want %d", len(out), want)
	}
	if out[0].ID != 0 || out[0].Name == "" {
		t.Fatalf("station 0 malformed: %+v", out[0])
	}
}

func TestArrivalEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := get(t, mux, "/arrival?from=0&to=5&at=08:15")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["reachable"] != true {
		t.Fatalf("response: %v", out)
	}
	if _, ok := out["arrive"].(string); !ok {
		t.Fatalf("no arrive field: %v", out)
	}
	// Bad inputs.
	for _, url := range []string{
		"/arrival?from=0&to=5",              // missing at
		"/arrival?from=0&to=99999&at=08:00", // bad station
		"/arrival?from=x&to=5&at=08:00",     // non-numeric
		"/arrival?from=0&to=5&at=27:99",     // bad time
	} {
		if rec := get(t, mux, url); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := get(t, mux, "/profile?from=0&to=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Connections []struct {
			Depart  string `json:"depart"`
			Arrive  string `json:"arrive"`
			Minutes int    `json:"minutes"`
		} `json:"connections"`
		QueryMS float64 `json:"query_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Connections) == 0 {
		t.Fatal("no connections returned")
	}
	for _, c := range out.Connections {
		if c.Minutes <= 0 || c.Depart == "" || c.Arrive == "" {
			t.Fatalf("malformed connection: %+v", c)
		}
	}
}

func TestJourneyEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := get(t, mux, "/journey?from=0&to=7&at=08:00")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Transfers int `json:"transfers"`
		Legs      []struct {
			Train  string `json:"train"`
			From   string `json:"from"`
			To     string `json:"to"`
			Depart string `json:"depart"`
			Arrive string `json:"arrive"`
		} `json:"legs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Legs) == 0 || out.Transfers != len(out.Legs)-1 {
		t.Fatalf("journey malformed: %+v", out)
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := load("", "", "", 0); err == nil {
		t.Fatal("empty source spec accepted")
	}
	if _, err := load("", "", "oahu", 0.05); err != nil {
		t.Fatalf("generate source failed: %v", err)
	}
	if _, err := load("/nonexistent/file.tt", "", "", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestArrivalUnreachable(t *testing.T) {
	// A two-station builder network where B never connects back to A.
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 1)
	bb := tb.AddStation("B", 1)
	if err := tb.AddTrain("t", []transit.StationID{a, bb}, 480, []transit.Ticks{10}, 0); err != nil {
		t.Fatal(err)
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, mux := serverFor(t, n)
	rec := get(t, mux, fmt.Sprintf("/arrival?from=%d&to=%d&at=08:00", bb, a))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["reachable"] != false {
		t.Fatalf("unreachable pair reported reachable: %v", out)
	}
}

func TestDelaysEndpointChangesAnswers(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	if got := arrivalAt(t, mux, 0, 1, "08:00"); got != "08:30" {
		t.Fatalf("pre-delay arrival %s, want 08:30", got)
	}
	// Delay the 08:00 train by 20 minutes: the 08:00 traveller now rides it
	// at 08:20 and arrives 08:50.
	rec := post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":20}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delays status %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["epoch"].(float64) != 1 || resp["conns_retimed"].(float64) != 1 {
		t.Fatalf("delay response: %v", resp)
	}
	if got := arrivalAt(t, mux, 0, 1, "08:00"); got != "08:50" {
		t.Fatalf("post-delay arrival %s, want 08:50", got)
	}
	// Cancel it: the traveller falls through to the 09:00 train.
	rec = post(t, mux, "/delays", `{"ops":[{"train":"h08","cancel":true}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", rec.Code, rec.Body.String())
	}
	if got := arrivalAt(t, mux, 0, 1, "08:00"); got != "09:30" {
		t.Fatalf("post-cancel arrival %s, want 09:30", got)
	}
	// /version reflects the swaps.
	rec = get(t, mux, "/version")
	if rec.Code != http.StatusOK {
		t.Fatalf("version status %d", rec.Code)
	}
	var ver map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &ver); err != nil {
		t.Fatal(err)
	}
	if ver["epoch"].(float64) != 2 {
		t.Fatalf("version epoch %v, want 2", ver["epoch"])
	}
}

func TestDelaysEndpointValidation(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	for body, want := range map[string]int{
		`not json`:                             http.StatusBadRequest,
		`{"ops":[]}`:                           http.StatusBadRequest,
		`{"ops":[{"route":99,"delay_min":5}]}`: http.StatusBadRequest, // unknown route
		`{"ops":[{"from":"27:99","delay_min":5}]}`: http.StatusBadRequest, // bad clock
		`{"ops":[{"train":"h08","delay_min":5}]}`:  http.StatusOK,
		`{"ops":[{"train":"no-such-train"}]}`:      http.StatusOK, // no-op batch is fine
	} {
		if rec := post(t, mux, "/delays", body); rec.Code != want {
			t.Errorf("body %q: status %d, want %d (%s)", body, rec.Code, want, rec.Body.String())
		}
	}
	// Method guard: GET /delays must not exist.
	if rec := get(t, mux, "/delays"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /delays status %d, want 405", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	arrivalAt(t, mux, 0, 1, "08:00")
	arrivalAt(t, mux, 0, 1, "09:00")
	post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":5}]}`)
	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"tpserver_snapshot_epoch 1",
		"tpserver_updates_total 1",
		"tpserver_connections_retimed_total 1",
		`tpserver_requests_total{endpoint="arrival"} 2`,
		`tpserver_requests_total{endpoint="delays"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestConcurrentDelaysAndQueries is the live-update integration test the CI
// race job runs: a real HTTP server on a synthetic network, concurrent
// /arrival readers racing /delays writers. It asserts no 5xx, race
// cleanliness (under -race), and that the post-update answer reflects the
// accumulated delay.
func TestConcurrentDelaysAndQueries(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const (
		readers = 8
		queries = 40
		batches = 20 // sequential posts of +1 min each to the 08:00 train
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*queries+batches)

	wg.Add(1)
	go func() { // writer: 20 batches of +1 minute
		defer wg.Done()
		for i := 0; i < batches; i++ {
			resp, err := http.Post(srv.URL+"/delays", "application/json",
				strings.NewReader(`{"ops":[{"train":"h08","delay_min":1}]}`))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				errs <- fmt.Errorf("delays returned %d", resp.StatusCode)
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				resp, err := http.Get(srv.URL + "/arrival?from=0&to=1&at=08:00")
				if err != nil {
					errs <- err
					return
				}
				var out map[string]any
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					errs <- fmt.Errorf("arrival returned %d", resp.StatusCode)
					continue
				}
				if err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All 20 one-minute delays accumulated: the 08:00 train now departs
	// 08:20 and arrives 08:50.
	if got := arrivalAt(t, mux, 0, 1, "08:00"); got != "08:50" {
		t.Fatalf("final arrival %s, want 08:50 after 20×1min delays", got)
	}
	resp, err := http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ver map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ver); err != nil {
		t.Fatal(err)
	}
	if ver["epoch"].(float64) != batches {
		t.Fatalf("final epoch %v, want %d", ver["epoch"], batches)
	}
}

// TestAsyncRepairServing drives the full repair loop through the HTTP
// surface: a preprocessed network serves, POST /delays swaps the patched
// snapshot in immediately, the background *repair* restores the distance
// table under the same epoch, and /metrics reports the dtable repair
// counters.
func TestAsyncRepairServing(t *testing.T) {
	sel := transit.TransferSelection{Fraction: 1}
	opt := transit.Options{RepairMaxDirty: 1}
	n, _, err := hourlyNetwork(t).Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := live.NewRegistry(n, live.Config{Policy: live.ReprocessAsync, Selection: sel, Options: opt})
	defer reg.Close()
	s := newServer(reg, 1)
	mux := newMux(s)

	rec := post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":15}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /delays: %d %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !reg.Snapshot().Preprocessed() {
		if time.Now().After(deadline) {
			t.Fatal("async repair never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec = get(t, mux, "/arrival?from=0&to=1&at=08:00")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"arrive":"08:45"`) {
		t.Fatalf("post-repair arrival: %d %s", rec.Code, rec.Body)
	}
	rec = get(t, mux, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{"dtable_repairs_total 1", "dtable_full_rebuilds_total 0", "dtable_rows_repaired_total", "dtable_repreprocess_last_seconds"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"transit"
	apiv1 "transit/api/v1"
	"transit/internal/faultfs"
	"transit/internal/live"
)

// TestReadyzLifecycle walks the readiness states: a freshly built server is
// starting (503), a serving one answers 200 with the epoch, a draining one
// is 503 again — while /healthz (liveness) says "ok" throughout.
func TestReadyzLifecycle(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	probe := func() (int, apiv1.HealthResponse) {
		rec := get(t, mux, "/readyz")
		var resp apiv1.HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("readyz body %q: %v", rec.Body.String(), err)
		}
		return rec.Code, resp
	}

	if code, resp := probe(); code != http.StatusServiceUnavailable || resp.Status != "starting" {
		t.Fatalf("before serving: got %d %q, want 503 starting", code, resp.Status)
	}
	s.ready.Store(readyServing)
	if code, resp := probe(); code != http.StatusOK || resp.Status != "ready" {
		t.Fatalf("serving: got %d %q, want 200 ready", code, resp.Status)
	}
	s.ready.Store(readyDraining)
	if code, resp := probe(); code != http.StatusServiceUnavailable || resp.Status != "draining" {
		t.Fatalf("draining: got %d %q, want 503 draining", code, resp.Status)
	}
	if rec := get(t, mux, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz while draining: got %d %q, want 200 ok", rec.Code, rec.Body.String())
	}
}

// TestPanicRecovery poisons the query path and checks the fence: the
// request gets a typed 500 envelope under code "internal", the panic is
// counted, and the next (healthy) request is answered normally by the same
// process.
func TestPanicRecovery(t *testing.T) {
	s := newServer(live.NewRegistry(hourlyNetwork(t), live.Config{Policy: live.ServeUnpruned}), 1)
	h := s.handler()
	s.planHook = func() { panic("query poisoned") }

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/arrival?from=0&to=1&at=08:00", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: got %d, want 500", rec.Code)
	}
	var resp apiv1.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("500 body %q: %v", rec.Body.String(), err)
	}
	if resp.Error.Code != string(transit.CodeInternal) {
		t.Fatalf("error code %q, want %q", resp.Error.Code, transit.CodeInternal)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	s.planHook = nil
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/arrival?from=0&to=1&at=08:00", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy request after a panic: got %d (%s), want 200", rec.Code, rec.Body.String())
	}
}

// TestPanicRecoveryAbortHandler: http.ErrAbortHandler is net/http's own
// abort idiom, not a defect — it must pass through the fence uncounted.
func TestPanicRecoveryAbortHandler(t *testing.T) {
	s, _ := serverFor(t, hourlyNetwork(t))
	fence := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if rec := recover(); rec != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler to pass through", rec)
		}
		if got := s.panics.Load(); got != 0 {
			t.Errorf("panics counter = %d, want 0 for an aborted response", got)
		}
	}()
	fence.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))
}

// TestDelaysJournalFailure injects a journal append failure under POST
// /delays: the batch must be rejected with 503 (retryable — nothing was
// applied, the epoch did not move), and once the fault clears the same
// batch must apply normally.
func TestDelaysJournalFailure(t *testing.T) {
	m := faultfs.NewMem()
	reg := live.NewRegistry(hourlyNetwork(t), live.Config{Policy: live.ServeUnpruned, FS: m})
	if _, err := reg.RecoverJournal("state.wal"); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := newServer(reg, 1)
	mux := newMux(s)

	m.SetPlan(faultfs.Plan{FailStep: 1, Err: errors.New("disk full")})
	rec := post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":5}]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("journal failure: got %d (%s), want 503", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "journal") {
		t.Fatalf("503 body %q does not name the journal", rec.Body.String())
	}
	if epoch := reg.Snapshot().Epoch; epoch != 0 {
		t.Fatalf("epoch advanced to %d on a failed append", epoch)
	}
	if m := reg.Metrics(); m.WalAppendErrors != 1 {
		t.Fatalf("WalAppendErrors = %d, want 1", m.WalAppendErrors)
	}

	m.SetPlan(faultfs.Plan{})
	rec = post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":5}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry after fault cleared: got %d (%s), want 200", rec.Code, rec.Body.String())
	}
	if epoch := reg.Snapshot().Epoch; epoch != 1 {
		t.Fatalf("epoch = %d after retry, want 1", epoch)
	}
}

// TestMetricsReliabilityFamilies asserts the new reliability series are
// exposed on /metrics with the WAL counters live: an applied batch shows up
// under tpserver_wal_appends_total and the journal size gauge moves.
func TestMetricsReliabilityFamilies(t *testing.T) {
	m := faultfs.NewMem()
	reg := live.NewRegistry(hourlyNetwork(t), live.Config{Policy: live.ServeUnpruned, FS: m})
	if _, err := reg.RecoverJournal("state.wal"); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	s := newServer(reg, 1)
	s.ready.Store(readyServing)
	mux := newMux(s)

	if rec := post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":5}]}`); rec.Code != http.StatusOK {
		t.Fatalf("delays: got %d (%s)", rec.Code, rec.Body.String())
	}
	body := get(t, mux, "/metrics").Body.String()
	for _, want := range []string{
		"tpserver_wal_appends_total 1",
		"tpserver_wal_append_errors_total 0",
		"tpserver_wal_replayed_batches_total 0",
		"tpserver_persist_failures_total 0",
		"tpserver_repair_timeouts_total 0",
		"tpserver_panics_total 0",
		"tpserver_ready 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "tpserver_wal_size_bytes") {
		t.Errorf("metrics missing tpserver_wal_size_bytes")
	}
	// The gauge must reflect a non-empty journal: header (8 bytes) + frame.
	var size int64
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "tpserver_wal_size_bytes "); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			size = n
		}
	}
	if size <= 8 {
		t.Errorf("tpserver_wal_size_bytes = %d, want > 8 (header) after one append", size)
	}
}

// Replication tests: the equivalence property (an updater and its replica
// answer every query byte-identically at the same epoch, across a
// randomized delay/query interleaving) and the chaos scenario (replica and
// updater both killed and restarted; the replica resumes from its journaled
// epoch without re-fetching the full snapshot while within retention).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"transit"
	"transit/internal/backoff"
	"transit/internal/live"
	"transit/internal/replica"
)

// gridNetwork is a deterministic 4-station network rich enough for varied
// journeys: two A→B→C lines and a B→D shuttle, all with known train names
// the randomized delay generator can pick from.
func gridNetwork(t testing.TB) (*transit.Network, []string) {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 3)
	c := tb.AddStation("C", 2)
	d := tb.AddStation("D", 2)
	var trains []string
	add := func(name string, stops []transit.StationID, dep transit.Ticks, rides []transit.Ticks) {
		if err := tb.AddTrain(name, stops, dep, rides, 0); err != nil {
			t.Fatal(err)
		}
		trains = append(trains, name)
	}
	for h := 6; h <= 21; h++ {
		add(fmt.Sprintf("abc%02d", h), []transit.StationID{a, b, c},
			transit.Ticks(h*60), []transit.Ticks{25, 20})
		add(fmt.Sprintf("ab%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60+30), []transit.Ticks{22})
		add(fmt.Sprintf("bd%02d", h), []transit.StationID{b, d},
			transit.Ticks(h*60+50), []transit.Ticks{15})
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, trains
}

// updaterNode wires a registry to a publisher and serves the full tpserver
// handler surface over a real listener.
type updaterNode struct {
	reg *live.Registry
	pub *replica.Publisher
	srv *httptest.Server
}

func startUpdater(t testing.TB, n *transit.Network, retain int) *updaterNode {
	t.Helper()
	pub := replica.NewPublisher(0, retain)
	reg := live.NewRegistry(n, live.Config{Policy: live.ServeUnpruned, OnApply: pub.Publish})
	pub.Snapshot = reg.Persist
	s := newServer(reg, 1)
	s.pub = pub
	s.ready.Store(readyServing)
	srv := httptest.NewServer(s.handler())
	t.Cleanup(func() { pub.Close(); srv.Close(); reg.Close() })
	return &updaterNode{reg: reg, pub: pub, srv: srv}
}

// replicaNode is a read-only query node following an updater.
type replicaNode struct {
	s        *server
	reg      *live.Registry
	follower *replica.Follower
	srv      *httptest.Server
}

func startReplica(t testing.TB, n *transit.Network, updaterURL string) *replicaNode {
	t.Helper()
	reg := live.NewRegistry(n, live.Config{Policy: live.ServeUnpruned})
	f := replica.NewFollower(replica.FollowerConfig{
		Registry: reg,
		BaseURL:  updaterURL,
		Backoff:  backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5},
		Logf:     t.Logf,
	})
	s := newServer(reg, 1)
	s.follower = f
	s.followURL = updaterURL
	s.ready.Store(readyServing)
	srv := httptest.NewServer(s.handler())
	f.Start()
	t.Cleanup(func() { f.Stop(); srv.Close(); reg.Close() })
	return &replicaNode{s: s, reg: reg, follower: f, srv: srv}
}

func waitForEpoch(t testing.TB, reg *live.Registry, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Epoch >= epoch {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica stuck at epoch %d, want %d", reg.Snapshot().Epoch, epoch)
}

// fetch GETs a URL and returns status and body.
func fetch(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// normalizeBody strips the fields that legitimately differ between two
// servers answering the same query — wall-clock measurements — and
// re-marshals with sorted keys, so equal logical answers compare equal.
func normalizeBody(t testing.TB, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return string(body) // not an object (e.g. /v1/stations list): compare raw
	}
	delete(m, "query_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestReplicationEquivalence is the equivalence property test: across a
// randomized interleaving of delay batches and queries, a replica answers
// every /v1 (and legacy) query byte-identically to its updater at the same
// epoch.
func TestReplicationEquivalence(t *testing.T) {
	net1, trains := gridNetwork(t)
	net2, _ := gridNetwork(t)
	upd := startUpdater(t, net1, 0)
	rep := startReplica(t, net2, upd.srv.URL)

	rng := rand.New(rand.NewSource(7))
	paths := func(rng *rand.Rand) []string {
		from, to := rng.Intn(4), rng.Intn(4)
		at := fmt.Sprintf("%02d:%02d", 6+rng.Intn(14), rng.Intn(60))
		return []string{
			fmt.Sprintf("/v1/arrival?from=%d&to=%d&depart=%s", from, to, at),
			fmt.Sprintf("/v1/profile?from=%d&to=%d", from, to),
			fmt.Sprintf("/v1/journey?from=%d&to=%d&depart=%s", from, to, at),
			"/v1/stations",
			fmt.Sprintf("/arrival?from=%d&to=%d&at=%s", from, to, at),
			fmt.Sprintf("/journey?from=%d&to=%d&at=%s", from, to, at),
		}
	}

	epoch := uint64(0)
	for round := 0; round < 12; round++ {
		// Random delay batch: 1–3 ops over known trains, sometimes with a
		// window, sometimes a cancellation.
		nops := 1 + rng.Intn(3)
		var ops []string
		for i := 0; i < nops; i++ {
			train := trains[rng.Intn(len(trains))]
			if rng.Intn(5) == 0 {
				ops = append(ops, fmt.Sprintf(`{"train":%q,"cancel":true}`, train))
			} else {
				op := fmt.Sprintf(`{"train":%q,"delay_min":%d`, train, 1+rng.Intn(40))
				if rng.Intn(3) == 0 {
					op += fmt.Sprintf(`,"from":"%02d:00","to":"%02d:00"`, 6+rng.Intn(6), 14+rng.Intn(8))
				}
				ops = append(ops, op+"}")
			}
		}
		body := `{"ops":[` + strings.Join(ops, ",") + `]}`
		resp, err := http.Post(upd.srv.URL+"/delays", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: delay batch rejected (%d): %s", round, resp.StatusCode, raw)
		}
		epoch = upd.reg.Snapshot().Epoch
		waitForEpoch(t, rep.reg, epoch)
		if got := rep.reg.Snapshot().Epoch; got != epoch {
			t.Fatalf("round %d: replica at epoch %d, updater at %d", round, got, epoch)
		}

		for _, p := range paths(rng) {
			uCode, uBody := fetch(t, upd.srv.URL+p)
			rCode, rBody := fetch(t, rep.srv.URL+p)
			if uCode != rCode {
				t.Fatalf("round %d %s: status %d vs %d", round, p, uCode, rCode)
			}
			u, r := normalizeBody(t, uBody), normalizeBody(t, rBody)
			if u != r {
				t.Fatalf("round %d %s (epoch %d):\nupdater: %s\nreplica: %s", round, p, epoch, u, r)
			}
		}
	}
	if f := rep.follower.SnapshotFetches(); f != 0 {
		t.Fatalf("equivalence run needed %d snapshot fetches; deltas alone should suffice", f)
	}
	if d := rep.follower.Divergences(); d != 0 {
		t.Fatalf("%d divergences detected between identical networks", d)
	}
}

func TestReplicaRejectsDelaysReadOnly(t *testing.T) {
	net1, _ := gridNetwork(t)
	net2, _ := gridNetwork(t)
	upd := startUpdater(t, net1, 0)
	rep := startReplica(t, net2, upd.srv.URL)

	resp, err := http.Post(rep.srv.URL+"/delays", "application/json",
		strings.NewReader(`{"ops":[{"train":"ab08","delay_min":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica POST /delays status %d, want 403", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != upd.srv.URL+"/delays" {
		t.Fatalf("Location %q, want %q", loc, upd.srv.URL+"/delays")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "read_only" {
		t.Fatalf("error code %q, want read_only", env.Error.Code)
	}
}

func TestReplicaReadyzSyncing(t *testing.T) {
	// A replica that cannot reach its updater must report syncing, not
	// ready: it has no idea how stale it is.
	net2, _ := gridNetwork(t)
	reg := live.NewRegistry(net2, live.Config{Policy: live.ServeUnpruned})
	defer reg.Close()
	f := replica.NewFollower(replica.FollowerConfig{
		Registry: reg,
		BaseURL:  "http://127.0.0.1:1", // nothing listens here
		Backoff:  backoff.Policy{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	s := newServer(reg, 1)
	s.follower = f
	s.followURL = "http://127.0.0.1:1"
	s.ready.Store(readyServing)
	f.Start()
	defer f.Stop()

	rec := get(t, newMux(s), "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unreachable-updater readyz status %d, want 503", rec.Code)
	}
	var hr struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "syncing" {
		t.Fatalf("readyz status %q, want syncing", hr.Status)
	}

	// A caught-up replica is ready.
	net1, _ := gridNetwork(t)
	upd := startUpdater(t, net1, 0)
	net3, _ := gridNetwork(t)
	rep := startReplica(t, net3, upd.srv.URL)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := fetch(t, rep.srv.URL+"/readyz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never became ready: %d %s", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicationStatusEndpoints(t *testing.T) {
	net1, _ := gridNetwork(t)
	net2, _ := gridNetwork(t)
	upd := startUpdater(t, net1, 0)
	rep := startReplica(t, net2, upd.srv.URL)
	if _, _, err := upd.reg.Apply([]transit.DelayOp{{Train: "ab08", Delay: 5}}); err != nil {
		t.Fatal(err)
	}
	waitForEpoch(t, rep.reg, 1)

	code, body := fetch(t, upd.srv.URL+"/v1/replication/status")
	if code != http.StatusOK {
		t.Fatalf("updater status %d: %s", code, body)
	}
	var us struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &us); err != nil {
		t.Fatal(err)
	}
	if us.Role != "updater" || us.Epoch != 1 {
		t.Fatalf("updater status %+v", us)
	}

	code, body = fetch(t, rep.srv.URL+"/v1/replication/status")
	if code != http.StatusOK {
		t.Fatalf("replica status %d: %s", code, body)
	}
	var rs struct {
		Role          string `json:"role"`
		Epoch         uint64 `json:"epoch"`
		UpdaterURL    string `json:"updater_url"`
		LagKnown      bool   `json:"lag_known"`
		DeltasApplied uint64 `json:"deltas_applied"`
	}
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Role != "replica" || rs.Epoch != 1 || rs.UpdaterURL != upd.srv.URL || !rs.LagKnown || rs.DeltasApplied != 1 {
		t.Fatalf("replica status %+v", rs)
	}

	// The stream endpoint does not exist on a replica.
	code, _ = fetch(t, rep.srv.URL+"/v1/replication/stream?from=1")
	if code == http.StatusOK {
		t.Fatal("replica served a replication stream")
	}
}

// TestReplicationChaos kills and restarts both sides: the replica dies
// mid-stream, the updater crash-restarts (journal replay, no clean
// checkpoint), and the restarted replica must resume from its journaled
// epoch over the stream — zero snapshot fetches — because the updater's
// replayed journal re-seeded the delta retention ring.
func TestReplicationChaos(t *testing.T) {
	dir := t.TempDir()
	updWAL := filepath.Join(dir, "updater.wal")
	repWAL := filepath.Join(dir, "replica.wal")

	netU, _ := gridNetwork(t)
	pub1 := replica.NewPublisher(0, 0)
	regU1 := live.NewRegistry(netU, live.Config{Policy: live.ServeUnpruned, OnApply: pub1.Publish})
	pub1.Snapshot = regU1.Persist
	if _, err := regU1.RecoverJournal(updWAL); err != nil {
		t.Fatal(err)
	}
	sU1 := newServer(regU1, 1)
	sU1.pub = pub1
	sU1.ready.Store(readyServing)
	srvU1 := httptest.NewServer(sU1.handler())

	// Epochs 1–3 while the first replica incarnation follows.
	for i := 0; i < 3; i++ {
		if _, _, err := regU1.Apply([]transit.DelayOp{{Train: fmt.Sprintf("ab%02d", 8+i), Delay: transit.Ticks(10 + i)}}); err != nil {
			t.Fatal(err)
		}
	}

	netR, _ := gridNetwork(t)
	regR1 := live.NewRegistry(netR, live.Config{Policy: live.ServeUnpruned})
	if _, err := regR1.RecoverJournal(repWAL); err != nil {
		t.Fatal(err)
	}
	f1 := replica.NewFollower(replica.FollowerConfig{
		Registry: regR1, BaseURL: srvU1.URL,
		Backoff: backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Logf:    t.Logf,
	})
	f1.Start()
	waitForEpoch(t, regR1, 3)
	if f1.SnapshotFetches() != 0 {
		t.Fatalf("first incarnation fetched %d snapshots", f1.SnapshotFetches())
	}

	// Kill the replica mid-stream: stop the follower without any clean
	// checkpoint; its journal holds epochs 1–3.
	f1.Stop()
	regR1.Close()

	// The updater applies two more epochs, then crash-restarts: no final
	// persist — recovery is pure journal replay, which must re-seed the
	// publisher ring so the returning replica can use the stream.
	for i := 0; i < 2; i++ {
		if _, _, err := regU1.Apply([]transit.DelayOp{{Train: fmt.Sprintf("bd%02d", 9+i), Delay: transit.Ticks(7 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	pub1.Close()
	srvU1.Close()
	regU1.Close()

	netU2, _ := gridNetwork(t)
	pub2 := replica.NewPublisher(0, 0)
	regU2 := live.NewRegistry(netU2, live.Config{Policy: live.ServeUnpruned, OnApply: pub2.Publish})
	pub2.Snapshot = regU2.Persist
	if _, err := regU2.RecoverJournal(updWAL); err != nil {
		t.Fatal(err)
	}
	if got := regU2.Snapshot().Epoch; got != 5 {
		t.Fatalf("updater restart recovered epoch %d, want 5", got)
	}
	if got := pub2.Floor(); got != 1 {
		t.Fatalf("replayed ring floor %d, want 1", got)
	}
	sU2 := newServer(regU2, 1)
	sU2.pub = pub2
	sU2.ready.Store(readyServing)
	srvU2 := httptest.NewServer(sU2.handler())
	defer func() { pub2.Close(); srvU2.Close(); regU2.Close() }()

	// Restart the replica from its journal: epochs 1–3 replay locally, and
	// the stream supplies 4–5. No snapshot fetch.
	netR2, _ := gridNetwork(t)
	regR2 := live.NewRegistry(netR2, live.Config{Policy: live.ServeUnpruned})
	if _, err := regR2.RecoverJournal(repWAL); err != nil {
		t.Fatal(err)
	}
	if got := regR2.Snapshot().Epoch; got != 3 {
		t.Fatalf("replica restart recovered epoch %d, want 3", got)
	}
	f2 := replica.NewFollower(replica.FollowerConfig{
		Registry: regR2, BaseURL: srvU2.URL,
		Backoff: backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Logf:    t.Logf,
	})
	f2.Start()
	defer func() { f2.Stop(); regR2.Close() }()
	waitForEpoch(t, regR2, 5)
	if f2.SnapshotFetches() != 0 {
		t.Fatalf("restarted replica fetched %d snapshots; within retention it must resume over the stream", f2.SnapshotFetches())
	}

	// Both sides answer identically after the double restart.
	for _, at := range []transit.Ticks{400, 500, 600} {
		u, err := regU2.Snapshot().Net.EarliestArrival(0, 3, at, transit.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := regR2.Snapshot().Net.EarliestArrival(0, 3, at, transit.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if u != r {
			t.Fatalf("at %d: updater arrival %v, replica %v", at, u, r)
		}
	}
}

// Multi-tenant serving tests: the /v1/{network} routes, the per-tenant
// isolation property (a catalog server answers byte-identically to
// dedicated single-network servers), eviction under memory pressure while
// queries are in flight, and fuzzing of the network route surface.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"transit"
	"transit/internal/catalog"
	"transit/internal/live"
)

// halfPastNetwork is hourlyNetwork shifted by 30 minutes: trains leave A at
// h:30 and arrive B at h+1:00. Queries distinguish the two tenants by
// answer, not just by name.
func halfPastNetwork(t testing.TB) *transit.Network {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	for h := 6; h <= 22; h++ {
		if err := tb.AddTrain(fmt.Sprintf("p%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60+30), []transit.Ticks{30}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// writeCatalogDir lays out a catalog directory: one snapshot per network
// plus the manifest.
func writeCatalogDir(t testing.TB, def string, nets map[string]*transit.Network) string {
	t.Helper()
	dir := t.TempDir()
	names := make([]string, 0, len(nets))
	for name := range nets {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &catalog.Manifest{Default: def}
	for _, name := range names {
		path := filepath.Join(dir, name+".snap")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := nets[name].WriteSnapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		m.Networks = append(m.Networks, catalog.Entry{Name: name, Snapshot: name + ".snap"})
	}
	if err := catalog.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	return dir
}

func catalogServerFor(t testing.TB, dir string, cfg catalog.Config) (*server, *http.ServeMux) {
	t.Helper()
	cfg.Live.Policy = live.ServeUnpruned
	cat, err := catalog.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cat.Close)
	s := newCatalogServer(cat, 1)
	return s, newMux(s)
}

// twoTenantServer is the standard fixture: tenants "aa" (hourly, default)
// and "bb" (half past), no memory pressure.
func twoTenantServer(t testing.TB) (*server, *http.ServeMux) {
	dir := writeCatalogDir(t, "aa", map[string]*transit.Network{
		"aa": hourlyNetwork(t),
		"bb": halfPastNetwork(t),
	})
	return catalogServerFor(t, dir, catalog.Config{})
}

// TestV1UnknownNetworkGolden pins the typed 404 for a name the manifest
// does not carry, on every route class that takes a {network} segment.
func TestV1UnknownNetworkGolden(t *testing.T) {
	_, mux := twoTenantServer(t)

	rec := get(t, mux, "/v1/nope/arrival?from=0&to=1&at=08:00")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown network status %d, want 404: %s", rec.Code, rec.Body.String())
	}
	assertErrorCode(t, rec, transit.CodeUnknownNetwork)
	want := canonical(t, `{"error":{"code":"unknown_network","message":"unknown network \"nope\"","field":"network"}}`)
	if got := normalizeV1(t, rec.Body.Bytes()); got != want {
		t.Fatalf("envelope mismatch\ngot:  %s\nwant: %s", got, want)
	}

	rec = get(t, mux, "/v1/nope/stations")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown network stations status %d", rec.Code)
	}
	assertErrorCode(t, rec, transit.CodeUnknownNetwork)

	// The legacy-style delay route renders plain text, but shares the
	// status mapping and the typed code underneath.
	rec = post(t, mux, "/nope/delays", `{"ops":[{"train":"h08","delay_min":5}]}`)
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "unknown network") {
		t.Fatalf("unknown network delays: status %d body %q", rec.Code, rec.Body.String())
	}
}

// TestV1NetworkRoutesGolden pins the tenant-addressed routes: the default
// tenant answers /v1/aa/... identically to the un-prefixed /v1/..., and the
// second tenant answers with its own timetable.
func TestV1NetworkRoutesGolden(t *testing.T) {
	_, mux := twoTenantServer(t)

	// /v1/aa/arrival ≡ /v1/arrival (aa is the default network).
	direct := get(t, mux, "/v1/arrival?from=0&to=1&at=08:00")
	named := get(t, mux, "/v1/aa/arrival?from=0&to=1&at=08:00")
	if direct.Code != 200 || named.Code != 200 {
		t.Fatalf("statuses %d/%d: %s / %s", direct.Code, named.Code, direct.Body.String(), named.Body.String())
	}
	if d, n := normalizeV1(t, direct.Body.Bytes()), normalizeV1(t, named.Body.Bytes()); d != n {
		t.Fatalf("default-vs-named mismatch\n/v1/arrival:    %s\n/v1/aa/arrival: %s", d, n)
	}

	// bb's trains leave at half past: the 08:00 traveller arrives 09:00.
	want := canonical(t, `{"from":{"id":0,"name":"A"},"to":{"id":1,"name":"B"},"depart":"08:00","reachable":true,"arrive":"09:00","minutes":60,"query_ms":0}`)
	golden(t, get(t, mux, "/v1/bb/arrival?from=0&to=1&at=08:00"), 200, want)

	// POST bodies and the batch endpoint route per tenant too.
	golden(t, post(t, mux, "/v1/bb/arrival", `{"from":0,"to":1,"depart":"08:00"}`), 200, want)
	wantMatrix := canonical(t, `{"depart":"08:00","sources":[{"id":0,"name":"A"}],"targets":[{"id":1,"name":"B"}],"minutes":[[60]],"query_ms":0}`)
	golden(t, post(t, mux, "/v1/bb/matrix", `{"sources":[0],"targets":[1],"depart":"08:00"}`), 200, wantMatrix)

	// Stations are per-tenant but identical here (same two stations).
	s1 := get(t, mux, "/v1/stations")
	s2 := get(t, mux, "/v1/bb/stations")
	if normalizeV1(t, s1.Body.Bytes()) != normalizeV1(t, s2.Body.Bytes()) {
		t.Fatal("stations mismatch between tenants with identical station sets")
	}
}

// TestV1NetworksEndpoint pins GET /v1/networks: the full tenant list with
// default/residency markers, cold tenants listed without being loaded.
func TestV1NetworksEndpoint(t *testing.T) {
	_, mux := twoTenantServer(t)

	// Nothing queried yet: both tenants cold.
	rec := get(t, mux, "/v1/networks")
	want := canonical(t, `{"networks":[
		{"name":"aa","default":true,"resident":false,"epoch":0},
		{"name":"bb","resident":false,"epoch":0}
	]}`)
	golden(t, rec, 200, want)

	// A query makes aa resident; listing still must not load bb.
	get(t, mux, "/v1/aa/arrival?from=0&to=1&at=08:00")
	rec = get(t, mux, "/v1/networks")
	var out struct {
		Networks []struct {
			Name          string `json:"name"`
			Default       bool   `json:"default"`
			Resident      bool   `json:"resident"`
			Epoch         uint64 `json:"epoch"`
			SnapshotBytes int64  `json:"snapshot_bytes"`
		} `json:"networks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Networks) != 2 {
		t.Fatalf("networks: %+v", out.Networks)
	}
	if n := out.Networks[0]; n.Name != "aa" || !n.Default || !n.Resident || n.SnapshotBytes <= 0 {
		t.Fatalf("aa after query: %+v", n)
	}
	if n := out.Networks[1]; n.Name != "bb" || n.Default || n.Resident {
		t.Fatalf("bb must stay cold: %+v", n)
	}
}

// TestLegacyDefaultNetwork pins the compatibility contract: the un-prefixed
// legacy routes serve the default tenant, deprecation headers intact, with
// the same answers as before the catalog existed.
func TestLegacyDefaultNetwork(t *testing.T) {
	_, mux := twoTenantServer(t)

	rec := get(t, mux, "/arrival?from=0&to=1&at=08:00")
	if rec.Code != 200 {
		t.Fatalf("legacy arrival status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("legacy /arrival lost its Deprecation header")
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/v1/arrival") {
		t.Errorf("legacy /arrival Link header %q", link)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// The default tenant aa is the hourly network: 08:00 → 08:30.
	if out["arrive"] != "08:30" {
		t.Fatalf("legacy default answer %v, want 08:30 (aa)", out["arrive"])
	}

	// Un-prefixed delays hit the default tenant only.
	rec = post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":20}]}`)
	if rec.Code != 200 {
		t.Fatalf("legacy delays status %d: %s", rec.Code, rec.Body.String())
	}
	var dresp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp["network"] != "aa" || dresp["epoch"].(float64) != 1 {
		t.Fatalf("legacy delays response %v", dresp)
	}
	if got := arrivalAt(t, mux, 0, 1, "08:00"); got != "08:50" {
		t.Fatalf("post-delay legacy arrival %s, want 08:50", got)
	}
	// bb never saw the batch.
	rec = get(t, mux, "/v1/bb/arrival?from=0&to=1&at=08:00")
	var bb map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &bb); err != nil {
		t.Fatal(err)
	}
	if bb["arrive"] != "09:00" {
		t.Fatalf("bb after aa's delay: %v, want 09:00", bb["arrive"])
	}
}

// TestCatalogIsolationProperty is the tenant-isolation property test: a
// two-tenant catalog server, interleaving delay batches and queries across
// both tenants, must answer every query byte-identically to two dedicated
// single-network servers receiving the same traffic. Any cross-tenant bleed
// — shared epochs, shared cache entries, delays applied to the wrong
// timetable — breaks the byte equality.
func TestCatalogIsolationProperty(t *testing.T) {
	_, mux := twoTenantServer(t)
	_, dedicatedA := serverFor(t, hourlyNetwork(t))
	_, dedicatedB := serverFor(t, halfPastNetwork(t))

	// The same query set is re-asked after every mutation; cache entries
	// outliving an epoch bump would serve stale bytes.
	queries := []string{
		"/v1/%s/arrival?from=0&to=1&at=07:10",
		"/v1/%s/arrival?from=0&to=1&at=08:00",
		"/v1/%s/arrival?from=0&to=1&at=12:45",
		"/v1/%s/profile?from=0&to=1",
		"/v1/%s/pareto?from=0&to=1&depart=07:45&max_transfers=2",
	}
	check := func(step string) {
		t.Helper()
		for _, q := range queries {
			catA := get(t, mux, fmt.Sprintf(q, "aa"))
			catB := get(t, mux, fmt.Sprintf(q, "bb"))
			dedA := get(t, dedicatedA, strings.Replace(fmt.Sprintf(q, ""), "//", "/", 1))
			dedB := get(t, dedicatedB, strings.Replace(fmt.Sprintf(q, ""), "//", "/", 1))
			if catA.Code != dedA.Code || normalizeV1(t, catA.Body.Bytes()) != normalizeV1(t, dedA.Body.Bytes()) {
				t.Fatalf("%s: tenant aa diverged on %s\ncatalog:   %s\ndedicated: %s",
					step, q, catA.Body.String(), dedA.Body.String())
			}
			if catB.Code != dedB.Code || normalizeV1(t, catB.Body.Bytes()) != normalizeV1(t, dedB.Body.Bytes()) {
				t.Fatalf("%s: tenant bb diverged on %s\ncatalog:   %s\ndedicated: %s",
					step, q, catB.Body.String(), dedB.Body.String())
			}
		}
	}

	check("pristine")
	// Interleave: delay aa, query; delay bb, query; cancel on aa, query…
	// Every batch goes to the catalog tenant AND its dedicated twin.
	steps := []struct{ tenant, batch string }{
		{"aa", `{"ops":[{"train":"h08","delay_min":15}]}`},
		{"bb", `{"ops":[{"train":"p07","delay_min":5}]}`},
		{"aa", `{"ops":[{"train":"h12","cancel":true}]}`},
		{"bb", `{"ops":[{"train":"p12","delay_min":30}]}`},
		{"aa", `{"ops":[{"train":"h08","delay_min":10}]}`}, // accumulates on the first batch
		{"bb", `{"ops":[{"train":"p07","cancel":true}]}`},
	}
	for i, st := range steps {
		ded := dedicatedA
		if st.tenant == "bb" {
			ded = dedicatedB
		}
		r1 := post(t, mux, "/"+st.tenant+"/delays", st.batch)
		r2 := post(t, ded, "/delays", st.batch)
		if r1.Code != 200 || r2.Code != 200 {
			t.Fatalf("step %d: delay statuses %d/%d", i, r1.Code, r2.Code)
		}
		check(fmt.Sprintf("step %d (%s)", i, st.tenant))
	}

	// Epochs advanced independently: three batches each.
	rec := get(t, mux, "/v1/networks")
	var out struct {
		Networks []struct {
			Name  string `json:"name"`
			Epoch uint64 `json:"epoch"`
		} `json:"networks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, n := range out.Networks {
		if n.Epoch != 3 {
			t.Errorf("tenant %s at epoch %d, want 3", n.Name, n.Epoch)
		}
	}
}

// TestCatalogEvictionRaceHTTP serves two tenants under a budget that fits
// only one, with concurrent clients hammering both: every request must
// succeed (evicted tenants reload transparently mid-traffic) and delay
// state must survive the churn. The CI race job runs this under -race.
func TestCatalogEvictionRaceHTTP(t *testing.T) {
	dir := writeCatalogDir(t, "aa", map[string]*transit.Network{
		"aa": hourlyNetwork(t),
		"bb": halfPastNetwork(t),
	})
	var budget int64
	for _, name := range []string{"aa", "bb"} {
		fi, err := os.Stat(filepath.Join(dir, name+".snap"))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > budget {
			budget = fi.Size()
		}
	}
	s, mux := catalogServerFor(t, dir, catalog.Config{
		MemBytes:   budget + budget/4,
		PersistDir: t.TempDir(),
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Seed aa with a delay; its epoch must survive every eviction round.
	if rec := post(t, mux, "/aa/delays", `{"ops":[{"train":"h09","delay_min":5}]}`); rec.Code != 200 {
		t.Fatalf("seed delay: %d %s", rec.Code, rec.Body.String())
	}

	const (
		workers = 8
		rounds  = 30
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for i := 0; i < rounds; i++ {
				tenant := [2]string{"aa", "bb"}[(w+i)%2]
				url := fmt.Sprintf("%s/v1/%s/arrival?from=0&to=1&at=09:00", srv.URL, tenant)
				resp, err := client.Get(url)
				if err != nil {
					errc <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				var out map[string]any
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					errc <- fmt.Errorf("worker %d %s: status %d err %v", w, tenant, resp.StatusCode, err)
					return
				}
				want := map[string]any{"aa": "09:35", "bb": "10:00"}[tenant]
				if out["arrive"] != want {
					errc <- fmt.Errorf("worker %d: %s answered %v, want %v", w, tenant, out["arrive"], want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	m := s.cat.Metrics()
	if m.Evictions == 0 {
		t.Error("no evictions under a one-tenant budget — the race saw no churn")
	}
	t.Logf("eviction churn: %d loads, %d evictions", m.Loads, m.Evictions)
}

// FuzzNetworkRoute throws hostile paths at the full mux: traversal attempts,
// encoded separators, absurd names. The server must answer every one with a
// controlled status — never a panic, never a 5xx.
func FuzzNetworkRoute(f *testing.F) {
	for _, seed := range []string{
		"/v1/aa/arrival?from=0&to=1&at=08:00",
		"/v1/bb/stations",
		"/v1/nope/arrival",
		"/v1/../arrival",
		"/v1/aa/../bb/arrival",
		"/v1//arrival",
		"/v1/%2e%2e/arrival",
		"/v1/aa%2Fdelays",
		"/aa/delays",
		"/" + strings.Repeat("x", 300) + "/delays",
		"/v1/aa/arrival/extra",
		"/v1/AA/arrival",
		"/v1/a\x00b/arrival",
	} {
		f.Add(seed)
	}
	_, mux := twoTenantServer(f)
	f.Fuzz(func(t *testing.T, path string) {
		// Bypass httptest.NewRequest's URL validation: hostile bytes go in
		// raw, exactly as a misbehaving client would send them.
		req := httptest.NewRequest(http.MethodGet, "http://fuzz.test/", nil)
		q := path
		if i := strings.IndexByte(path, '?'); i >= 0 {
			req.URL.RawQuery = path[i+1:]
			q = path[:i]
		}
		req.URL.Path = q
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 301, 308, 400, 404, 405:
		default:
			t.Fatalf("path %q: status %d body %q", path, rec.Code, rec.Body.String())
		}
	})
}

// Command tpserver exposes a network as a JSON-over-HTTP travel-information
// service — the deployment shape the paper's query times target (sub-120 ms
// station-to-station answers for interactive timetable information).
//
//	tpserver -net la.tt -preprocess 0.05 -listen :8080
//
// Endpoints:
//
//	GET /stations                         list stations
//	GET /arrival?from=ID&to=ID&at=HH:MM   earliest arrival
//	GET /profile?from=ID&to=ID            all best connections of the day
//	GET /journey?from=ID&to=ID&at=HH:MM   itinerary with legs
//	GET /healthz                          liveness
//
// Query execution is allocation-free in the steady state: each request
// goroutine checks a search workspace out of the library's pool
// (internal/core), runs its query on generation-stamped reusable arrays,
// and returns the workspace — the /arrival and /profile hot paths never
// re-allocate or Infinity-fill their O(nodes × connections) label arrays,
// no matter how many concurrent clients hammer the server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"

	"transit"
)

type server struct {
	net     *transit.Network
	threads int
}

func main() {
	netFile := flag.String("net", "", "timetable file (library text format)")
	gtfsDir := flag.String("gtfs", "", "GTFS feed directory")
	family := flag.String("generate", "", "serve a synthetic family instead of a file")
	scale := flag.Float64("scale", 0.25, "scale for -generate")
	preprocess := flag.Float64("preprocess", 0.05, "transfer-station fraction (0 = no distance table)")
	threads := flag.Int("threads", 1, "parallel workers per query")
	listen := flag.String("listen", ":8080", "listen address")
	flag.Parse()

	n, err := load(*netFile, *gtfsDir, *family, *scale)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded network: %s", n.Stats())
	if *preprocess > 0 {
		var ps *transit.PreprocessStats
		n, ps, err = n.Preprocess(transit.TransferSelection{Fraction: *preprocess}, transit.Options{Threads: *threads})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("preprocessed %d transfer stations in %v (%.1f MiB)",
			ps.TransferStations, ps.Elapsed, float64(ps.TableBytes)/(1<<20))
	}
	s := &server{net: n, threads: *threads}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stations", s.stations)
	mux.HandleFunc("GET /arrival", s.arrival)
	mux.HandleFunc("GET /profile", s.profile)
	mux.HandleFunc("GET /journey", s.journey)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	log.Printf("listening on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

func load(netFile, gtfsDir, family string, scale float64) (*transit.Network, error) {
	switch {
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return transit.ReadNetwork(f)
	case gtfsDir != "":
		return transit.LoadGTFS(gtfsDir)
	case family != "":
		return transit.Generate(family, scale, 0)
	default:
		return nil, fmt.Errorf("tpserver: one of -net, -gtfs, -generate is required")
	}
}

type stationJSON struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	Transfer int     `json:"transfer_min"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
}

func (s *server) stations(w http.ResponseWriter, r *http.Request) {
	out := make([]stationJSON, s.net.NumStations())
	for i := range out {
		st := s.net.Station(transit.StationID(i))
		out[i] = stationJSON{ID: int(st.ID), Name: st.Name, Transfer: int(st.Transfer), X: st.X, Y: st.Y}
	}
	writeJSON(w, out)
}

func (s *server) parsePair(r *http.Request) (from, to transit.StationID, err error) {
	f, err1 := strconv.Atoi(r.URL.Query().Get("from"))
	t, err2 := strconv.Atoi(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil || f < 0 || t < 0 || f >= s.net.NumStations() || t >= s.net.NumStations() {
		return 0, 0, fmt.Errorf("invalid from/to")
	}
	return transit.StationID(f), transit.StationID(t), nil
}

func (s *server) arrival(w http.ResponseWriter, r *http.Request) {
	from, to, err := s.parsePair(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dep, err := transit.ParseClock(r.URL.Query().Get("at"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	arr, err := s.net.EarliestArrival(from, to, dep, transit.Options{Threads: s.threads})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := map[string]any{"from": from, "to": to, "depart": s.net.FormatClock(dep)}
	if arr.IsInf() {
		resp["reachable"] = false
	} else {
		resp["reachable"] = true
		resp["arrive"] = s.net.FormatClock(arr)
		resp["minutes"] = int(arr - dep)
	}
	writeJSON(w, resp)
}

func (s *server) profile(w http.ResponseWriter, r *http.Request) {
	from, to, err := s.parsePair(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, st, err := s.net.Profile(from, to, transit.Options{Threads: s.threads})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type connJSON struct {
		Depart  string `json:"depart"`
		Arrive  string `json:"arrive"`
		Minutes int    `json:"minutes"`
	}
	conns := p.Connections()
	out := struct {
		From        transit.StationID `json:"from"`
		To          transit.StationID `json:"to"`
		Connections []connJSON        `json:"connections"`
		QueryMS     float64           `json:"query_ms"`
	}{From: from, To: to, QueryMS: float64(st.Elapsed.Microseconds()) / 1000}
	for _, c := range conns {
		out.Connections = append(out.Connections, connJSON{
			Depart:  s.net.FormatClock(c.Departure),
			Arrive:  s.net.FormatClock(c.Arrival),
			Minutes: int(c.Arrival - c.Departure),
		})
	}
	writeJSON(w, out)
}

func (s *server) journey(w http.ResponseWriter, r *http.Request) {
	from, to, err := s.parsePair(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dep, err := transit.ParseClock(r.URL.Query().Get("at"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	all, err := s.net.ProfileAll(from, transit.Options{Threads: s.threads, TrackJourneys: true})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	j, err := all.Journey(to, dep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	type legJSON struct {
		Train  string `json:"train"`
		From   string `json:"from"`
		Depart string `json:"depart"`
		To     string `json:"to"`
		Arrive string `json:"arrive"`
		Stops  int    `json:"stops"`
	}
	out := struct {
		Transfers int       `json:"transfers"`
		Legs      []legJSON `json:"legs"`
	}{Transfers: j.Transfers()}
	for _, l := range j.Legs {
		out.Legs = append(out.Legs, legJSON{
			Train: l.Train, From: l.FromName, Depart: s.net.FormatClock(l.Departure),
			To: l.ToName, Arrive: s.net.FormatClock(l.Arrival), Stops: l.Stops,
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tpserver: encode: %v", err)
	}
}

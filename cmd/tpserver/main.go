// Command tpserver exposes a network as a JSON-over-HTTP travel-information
// service — the deployment shape the paper's query times target (sub-120 ms
// station-to-station answers for interactive timetable information), plus
// the fully dynamic scenario of the paper's conclusion: delay messages are
// ingested while the server runs and take effect immediately, with no
// restart and no blocking of in-flight queries.
//
//	tpserver -net la.tt -preprocess 0.05 -repreprocess async -listen :8080
//	tpserver -snapshot la.snap -persist state.snap -listen :8080
//
// Endpoints (see docs/API.md for the wire format):
//
//	GET|POST /v1/arrival                   earliest arrival (typed JSON)
//	GET|POST /v1/profile                   all best connections of the day
//	GET|POST /v1/journey                   itinerary with legs
//	GET|POST /v1/pareto                    arrival/transfers Pareto frontier
//	POST     /v1/matrix                    batch one-to-many earliest arrivals
//	GET      /v1/stations                  list stations
//	POST     /delays                       apply a delay/cancellation batch
//	GET      /version                      snapshot epoch + provenance
//	GET      /metrics                      Prometheus-style counters
//	GET      /healthz                      liveness
//	GET      /readyz                       readiness (503 while starting or draining)
//
// Every /v1 query runs under the request's context — a disconnected client
// aborts the in-flight search (counted by tpserver_queries_cancelled_total)
// — bounded by the X-Deadline-Ms request header or the -query-timeout
// default, and failures arrive in a structured error envelope with
// machine-readable codes. All /v1 handlers are thin wrappers over the
// library's unified transit.Network.Plan entry point.
//
// The server degrades gracefully instead of collapsing under load: search
// work beyond -max-inflight queues for at most -queue-deadline and is then
// shed with HTTP 429 and a Retry-After header (error code "overloaded"),
// so admitted queries keep bounded latency while the excess fails fast and
// cheap. An epoch-keyed result cache (-cache-entries / -cache-bytes)
// answers repeated identical requests without a search and coalesces
// concurrent identical requests into one underlying Plan call; applying a
// delay batch bumps the snapshot epoch, which invalidates every cached
// answer at zero cost. Both layers are observable on /metrics
// (tpserver_inflight, tpserver_shed_total, tpserver_cache_*_total) and
// both apply to the deprecated legacy endpoints too. cmd/tploadgen drives
// the server at a configurable offered rate to measure this behavior.
//
// The unversioned query endpoints predating /v1 remain as deprecated
// wrappers over the same Plan path (marked with a Deprecation header):
//
//	GET /stations
//	GET /arrival?from=ID&to=ID&at=HH:MM
//	GET /profile?from=ID&to=ID
//	GET /journey?from=ID&to=ID&at=HH:MM
//
// Query execution is allocation-free in the steady state: each request
// goroutine checks a search workspace out of the library's pool
// (internal/core) and runs on generation-stamped reusable arrays.
//
// Dynamic updates run through internal/live: every request atomically loads
// the current network snapshot, POST /delays patches a successor snapshot
// incrementally (copy-on-write of only the touched connection and ride-edge
// slices) and swaps it in, so concurrent queries always see one consistent
// version. The -repreprocess flag picks what happens to the distance table
// an update invalidates: rebuild it in the background (async), before the
// swap (sync), or serve unpruned (off).
//
// A POST /delays body is a JSON batch of train-level operations:
//
//	{"ops": [
//	  {"train": "IC 106", "delay_min": 15},
//	  {"route": 4, "from": "07:00", "to": "10:00", "delay_min": 20},
//	  {"train": "RE 7", "cancel": true}
//	]}
//
// # Snapshots and persistence
//
// -snapshot boots from a versioned network snapshot (tpgen -o, or
// transit.Network.WriteSnapshot; format in docs/SNAPSHOT_FORMAT.md): the
// timetable, station graph and distance table load from checksummed
// sections in milliseconds, instead of re-generating and re-preprocessing
// from source. -persist names a state file the server checkpoints the
// current patched epoch to every -persist-interval (atomic write + rename)
// and once more on shutdown; when the file exists at startup it wins over
// -snapshot, so a restarted server resumes with its delays intact.
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight queries drain (bounded by -shutdown-timeout), and background
// re-preprocessing is awaited before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof side listener
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"transit"
	"transit/internal/admit"
	"transit/internal/catalog"
	"transit/internal/live"
	"transit/internal/replica"
)

type server struct {
	// cat is the network catalog every query routes through: multi-tenant
	// under -catalog, or a single always-resident tenant wrapping the
	// legacy flags (catalog.NewStatic). defaultNet answers the un-prefixed
	// routes.
	cat        *catalog.Catalog
	defaultNet string
	threads    int

	// gate bounds concurrent search work (-max-inflight / -queue-deadline);
	// nil admits everything. cache is the epoch-keyed result cache
	// (-cache-entries / -cache-bytes); nil caches nothing. Both are wired
	// through s.plan — see admit.go.
	gate  *admit.Gate
	cache *admit.Cache

	// planHook, when set, runs inside an admitted fill just before the
	// search; tests use it to hold a slot open deterministically.
	planHook func()

	// queryTimeout is the default per-request deadline of the query
	// endpoints; clients can shorten it with the X-Deadline-Ms header.
	queryTimeout time.Duration

	// cancelled counts queries abandoned mid-flight (client disconnect or
	// deadline), exposed as tpserver_queries_cancelled_total.
	cancelled atomic.Uint64

	// ready is the instance's readiness state (readyStarting/-Serving/
	// -Draining): GET /readyz answers 200 only while serving, and shutdown
	// flips to draining before the admission gate drains so load balancers
	// stop routing here first. panics counts handler panics recovered by
	// the recoverPanics fence (tpserver_panics_total).
	ready  atomic.Int32
	panics atomic.Uint64

	// Per-endpoint request counters (GET /metrics). The map is fully
	// populated by newMux before the server starts; afterwards only the
	// atomic values move, so concurrent reads need no lock. netHits counts
	// requests per catalog tenant the same way (populated from the
	// manifest at construction).
	hits    map[string]*atomic.Uint64
	netHits map[string]*atomic.Uint64

	// obs owns the metric registry and every latency histogram; logger is
	// the structured process log; slowQuery is the -slow-query threshold
	// above which finished queries are logged stage by stage (0 = off, the
	// default so tests opt in explicitly).
	obs       *serverObs
	logger    *slog.Logger
	slowQuery time.Duration

	// Replication role (docs/REPLICATION.md). Exactly one of pub/follower
	// is set outside catalog mode: pub publishes epoch deltas to replicas
	// (updater, the default single-network role), follower applies the
	// stream from the updater at followURL and makes this instance
	// read-only. syncLag is the -sync-lag readiness threshold: /readyz
	// reports "syncing" until the follower is within that many epochs of
	// its updater.
	pub       *replica.Publisher
	follower  *replica.Follower
	followURL string
	syncLag   uint64
}

// defaultQueryTimeout is the per-request deadline applied when the
// operator does not configure -query-timeout.
const defaultQueryTimeout = 10 * time.Second

// defaultNetworkName is the tenant name the single-network flags serve
// under (one-entry static catalog).
const defaultNetworkName = "default"

// newServer wraps one pre-built registry as a single-network server — the
// legacy construction, now a one-entry static catalog.
func newServer(reg *live.Registry, threads int) *server {
	return newCatalogServer(catalog.NewStatic(defaultNetworkName, reg), threads)
}

func newCatalogServer(cat *catalog.Catalog, threads int) *server {
	s := &server{cat: cat, defaultNet: cat.DefaultName(), threads: threads,
		queryTimeout: defaultQueryTimeout,
		hits:         make(map[string]*atomic.Uint64),
		netHits:      make(map[string]*atomic.Uint64),
		logger:       slog.Default()}
	for _, name := range cat.Names() {
		s.netHits[name] = &atomic.Uint64{}
	}
	s.obs = newServerObs(s)
	return s
}

// defaultLive reads the default tenant's registry metrics: the legacy flat
// /metrics series sample it, keeping their pre-catalog names and values.
func (s *server) defaultLive() live.Metrics {
	return s.cat.LiveMetrics(s.defaultNet)
}

// acquire pins the tenant a request addresses — the {network} path segment
// when the route carries one, the default network otherwise — for the
// duration of the request. The caller must Release the handle.
func (s *server) acquire(r *http.Request) (*catalog.Handle, error) {
	name := r.PathValue("network")
	if name == "" {
		name = s.defaultNet
	}
	h, err := s.cat.Acquire(r.Context(), name)
	if err != nil {
		return nil, err
	}
	if c, ok := s.netHits[name]; ok {
		c.Add(1)
	}
	return h, nil
}

// count registers a request counter and latency histogram for the endpoint
// and wraps its handler.
func (s *server) count(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	c := &atomic.Uint64{}
	s.hits[endpoint] = c
	hist := s.obs.endpointSeries(endpoint, c)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		start := time.Now()
		h(w, r)
		hist.ObserveDuration(time.Since(start))
	}
}

func newMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	registerV1(mux, s)
	registerReplication(mux, s)
	mux.HandleFunc("GET /stations", s.count("stations", deprecated("/v1/stations", s.stations)))
	mux.HandleFunc("GET /arrival", s.count("arrival", deprecated("/v1/arrival", s.arrival)))
	mux.HandleFunc("GET /profile", s.count("profile", deprecated("/v1/profile", s.profile)))
	mux.HandleFunc("GET /journey", s.count("journey", deprecated("/v1/journey", s.journey)))
	mux.HandleFunc("POST /delays", s.count("delays", s.delays))
	mux.HandleFunc("POST /{network}/delays", s.count("network_delays", s.delays))
	mux.HandleFunc("GET /version", s.count("version", s.version))
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.readyz)
	return mux
}

func main() {
	netFile := flag.String("net", "", "timetable file (library text format)")
	gtfsDir := flag.String("gtfs", "", "GTFS feed directory")
	family := flag.String("generate", "", "serve a synthetic family instead of a file")
	scale := flag.Float64("scale", 0.25, "scale for -generate")
	snapFile := flag.String("snapshot", "", "boot from a network snapshot (tpgen -o; docs/SNAPSHOT_FORMAT.md)")
	persistPath := flag.String("persist", "", "state file for periodic epoch persistence; resumed at startup when present")
	persistInterval := flag.Duration("persist-interval", 30*time.Second, "how often -persist checkpoints the current epoch")
	walEnabled := flag.Bool("wal", true,
		"write-ahead journal next to the persist file(s): delay batches are fsynced before being acked, so a crash between checkpoints loses no acked batch (docs/RELIABILITY.md)")
	repairTimeout := flag.Duration("repair-timeout", 2*time.Minute,
		"watchdog on one background distance-table repair; past it the repair is abandoned for a full rebuild (0 = no watchdog)")
	preprocess := flag.Float64("preprocess", 0.05, "transfer-station fraction (0 = no distance table)")
	repreprocess := flag.String("repreprocess", "async", "distance table policy after a delay update: async, sync or off")
	threads := flag.Int("threads", 1, "parallel workers per query")
	queryTimeout := flag.Duration("query-timeout", defaultQueryTimeout,
		"default per-request query deadline (clients shorten it with X-Deadline-Ms; 0 = none)")
	maxInflight := flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0),
		"concurrent search budget; excess requests queue briefly, then shed with 429 (0 = unbounded)")
	queueDeadline := flag.Duration("queue-deadline", 100*time.Millisecond,
		"how long a request may wait for an admission slot before being shed")
	cacheEntries := flag.Int("cache-entries", 4096, "result cache capacity in entries (0 = caching off)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20,
		"result cache memory bound in approximate result bytes (0 = entry bound only)")
	listen := flag.String("listen", ":8080", "listen address")
	pprofAddr := flag.String("pprof", "", "side listener for net/http/pprof (e.g. 127.0.0.1:6060; empty = off)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "graceful-shutdown drain budget")
	logFormat := flag.String("log-format", "text", "structured log output: text or json")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond,
		"log queries slower than this with their stage breakdown and search effort (0 = off)")
	catalogDir := flag.String("catalog", "",
		"serve a multi-network catalog directory (catalog.json manifest; docs/CATALOG.md) instead of a single network")
	catalogMemBytes := flag.Int64("catalog-mem-bytes", 0,
		"resident-set budget for catalog tenants in snapshot bytes; LRU tenants are evicted above it (0 = unlimited)")
	catalogDefault := flag.String("catalog-default", "",
		"network serving the un-prefixed routes (default: the manifest's default entry)")
	catalogPersist := flag.Bool("catalog-persist", true,
		"persist each tenant's delay epoch to <catalog-persist-dir>/<name>.live.snap")
	catalogPersistDir := flag.String("catalog-persist-dir", "",
		"directory for per-tenant persistence files (default: the catalog directory)")
	role := flag.String("role", "",
		"replication role: updater or replica (default: updater, or replica when -follow is set; docs/REPLICATION.md)")
	follow := flag.String("follow", "",
		"updater base URL to follow as a read-only query replica (e.g. http://updater:8080)")
	replicationRetain := flag.Int("replication-retain", replica.DefaultRetain,
		"delta epochs the updater retains for reconnecting replicas; a replica further behind re-fetches the full snapshot")
	syncLag := flag.Uint64("sync-lag", 8,
		"replica readiness threshold: /readyz reports syncing until within this many epochs of the updater")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		// Profiles (CPU of repair vs. rebuild, heap of the table) are served
		// on a separate listener so they can stay firewalled off from query
		// traffic; net/http/pprof registers on the default mux.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr, "path", "/debug/pprof/")
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Warn("pprof listener failed", "err", err)
			}
		}()
	}

	start := time.Now()
	policy, err := live.ParsePolicy(*repreprocess)
	if err != nil {
		fatal("bad -repreprocess", "err", err)
	}
	switch *role {
	case "", "updater", "replica":
	default:
		fatal("bad -role", "role", *role, "want", "updater or replica")
	}
	if *role == "updater" && *follow != "" {
		fatal("-role updater is exclusive with -follow (an updater is the node replicas follow)")
	}
	if *role == "replica" && *follow == "" {
		fatal("-role replica requires -follow <updater-url>")
	}
	if *catalogDir != "" && (*follow != "" || *role != "") {
		// Replication follows exactly one network's epoch sequence; the
		// multi-tenant catalog has many. Refuse loudly rather than follow
		// one tenant and silently serve stale answers for the rest.
		fatal("-catalog cannot be combined with -follow or -role: replication is single-network only (docs/REPLICATION.md)")
	}
	if *follow != "" && (*netFile != "" || *gtfsDir != "" || *family != "") {
		// A replica's state must be byte-identical to the updater's, which
		// only a snapshot lineage guarantees — not an independent load of
		// the source timetable.
		fatal("-follow is exclusive with -net, -gtfs and -generate: a replica boots from -snapshot, its -persist file, or the updater's snapshot endpoint")
	}
	if *catalogDir != "" {
		// Multi-tenant catalog mode: the single-network source flags are
		// meaningless here and almost certainly a confused invocation.
		if *netFile != "" || *gtfsDir != "" || *family != "" || *snapFile != "" || *persistPath != "" {
			fatal("-catalog is exclusive with -net, -gtfs, -generate, -snapshot and -persist")
		}
		lcfg := live.Config{
			Policy:        policy,
			Selection:     transit.TransferSelection{Fraction: *preprocess},
			Options:       transit.Options{Threads: *threads},
			RepairTimeout: *repairTimeout,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		}
		if *preprocess <= 0 {
			lcfg.Policy = live.ServeUnpruned
		}
		ccfg := catalog.Config{
			MemBytes:        *catalogMemBytes,
			Live:            lcfg,
			PersistInterval: *persistInterval,
			Default:         *catalogDefault,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		}
		if *catalogPersist {
			ccfg.PersistDir = *catalogPersistDir
			if ccfg.PersistDir == "" {
				ccfg.PersistDir = *catalogDir
			}
			ccfg.Journal = *walEnabled
		}
		cat, err := catalog.Open(*catalogDir, ccfg)
		if err != nil {
			fatal("catalog open failed", "err", err)
		}
		s := newCatalogServer(cat, *threads)
		logger.Info("catalog open", "dir", *catalogDir, "networks", len(cat.Names()),
			"default", cat.DefaultName(), "mem_bytes", *catalogMemBytes,
			"startup", time.Since(start).Round(time.Millisecond))
		serve(s, logger, fatal, serveConfig{
			queryTimeout: *queryTimeout, slowQuery: *slowQuery,
			maxInflight: *maxInflight, queueDeadline: *queueDeadline,
			cacheEntries: *cacheEntries, cacheBytes: *cacheBytes,
			listen: *listen, shutdownTimeout: *shutdownTimeout,
			policy: policy,
		})
		return
	}
	if *persistPath != "" {
		// A crash mid-checkpoint leaves a half-written temp next to the
		// persist file (the complete image only ever carries the final name);
		// sweep orphans before anything reads the directory.
		if removed, err := live.CleanupTemps(nil, *persistPath); err != nil {
			logger.Warn("orphaned persist temp cleanup failed", "err", err)
		} else if len(removed) > 0 {
			logger.Info("removed orphaned persist temp files", "files", removed)
		}
	}
	var n *transit.Network
	state := transit.SnapshotState{}
	switch {
	case *persistPath != "" && fileExists(*persistPath):
		// A persisted state file is the newest version this server (or its
		// predecessor) served: it wins over the base snapshot.
		var err error
		n, state, err = loadSnapshotFile(*persistPath)
		if err != nil {
			fatal("resuming from persisted state failed", "path", *persistPath, "err", err)
		}
		logger.Info("resumed from persisted state", "epoch", state.Epoch, "path", *persistPath, "network", n.Stats())
	case *snapFile != "":
		var err error
		n, state, err = loadSnapshotFile(*snapFile)
		if err != nil {
			fatal("snapshot load failed", "err", err)
		}
		logger.Info("loaded snapshot", "path", *snapFile, "epoch", state.Epoch, "network", n.Stats())
	case *follow != "":
		// Cold replica boot: no local state, so the updater's snapshot
		// endpoint is the source of truth.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		net, st, err := replica.FetchSnapshot(ctx, nil, *follow)
		cancel()
		if err != nil {
			fatal("cold boot from updater snapshot failed", "updater", *follow, "err", err)
		}
		n, state = net, *st
		logger.Info("cold-booted from updater snapshot", "updater", *follow,
			"epoch", state.Epoch, "network", n.Stats())
	default:
		var err error
		n, err = load(*netFile, *gtfsDir, *family, *scale)
		if err != nil {
			fatal("network load failed", "err", err)
		}
		logger.Info("loaded network", "network", n.Stats())
	}
	sel := transit.TransferSelection{Fraction: *preprocess}
	if *preprocess > 0 && !n.Preprocessed() {
		var ps *transit.PreprocessStats
		var err error
		n, ps, err = n.Preprocess(sel, transit.Options{Threads: *threads})
		if err != nil {
			fatal("preprocessing failed", "err", err)
		}
		logger.Info("preprocessed network", "transfer_stations", ps.TransferStations,
			"elapsed", ps.Elapsed, "table_mib", float64(ps.TableBytes)/(1<<20))
	} else if n.Preprocessed() {
		logger.Info("distance table loaded from snapshot (no preprocessing needed)")
	}
	if *preprocess <= 0 {
		// No valid transfer selection to rebuild with — even if a snapshot
		// carried a table, the first delay batch invalidates it and the
		// server continues unpruned (the operator opted out of
		// preprocessing work with -preprocess 0).
		policy = live.ServeUnpruned
	}
	lcfg := live.Config{
		Policy:        policy,
		Selection:     sel,
		Options:       transit.Options{Threads: *threads},
		RepairTimeout: *repairTimeout,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}
	var pub *replica.Publisher
	if *follow == "" {
		// Updater role (the default): publish every applied batch as an
		// epoch delta. Created before journal recovery so the replayed
		// tail seeds the retention ring — replicas restarted alongside the
		// updater resume from the stream, not the snapshot.
		pub = replica.NewPublisher(state.Epoch, *replicationRetain)
		pub.Logf = lcfg.Logf
		lcfg.OnApply = pub.Publish
	}
	reg := live.NewRegistryAt(n, state, lcfg)
	if pub != nil {
		pub.Snapshot = reg.Persist
	}
	if *persistPath != "" {
		if *walEnabled {
			// Replay acked-but-unpersisted batches on top of the checkpoint,
			// then journal every further batch before acking it.
			walPath := *persistPath + ".wal"
			replayed, err := reg.RecoverJournal(walPath)
			if err != nil {
				fatal("journal recovery failed", "path", walPath, "err", err)
			}
			if replayed > 0 {
				logger.Info("replayed write-ahead journal", "path", walPath,
					"batches", replayed, "epoch", reg.Snapshot().Epoch)
			}
		}
		reg.StartPersist(*persistPath, *persistInterval)
	}
	s := newServer(reg, *threads)
	s.pub = pub
	if *follow != "" {
		s.followURL = *follow
		s.syncLag = *syncLag
		s.follower = replica.NewFollower(replica.FollowerConfig{
			Registry: reg,
			BaseURL:  *follow,
			Logf:     lcfg.Logf,
		})
		s.follower.Start()
		logger.Info("following updater", "updater", *follow, "sync_lag", *syncLag)
	}
	roleName := "updater"
	if s.follower != nil {
		roleName = "replica"
	}
	logger.Info("ready", "startup", time.Since(start).Round(time.Millisecond),
		"epoch", reg.Snapshot().Epoch, "role", roleName)
	serve(s, logger, fatal, serveConfig{
		queryTimeout: *queryTimeout, slowQuery: *slowQuery,
		maxInflight: *maxInflight, queueDeadline: *queueDeadline,
		cacheEntries: *cacheEntries, cacheBytes: *cacheBytes,
		listen: *listen, shutdownTimeout: *shutdownTimeout,
		policy: policy,
	})
}

// serveConfig carries the serving-layer flags shared by the single-network
// and catalog boot paths.
type serveConfig struct {
	queryTimeout    time.Duration
	slowQuery       time.Duration
	maxInflight     int
	queueDeadline   time.Duration
	cacheEntries    int
	cacheBytes      int64
	listen          string
	shutdownTimeout time.Duration
	policy          live.Policy
}

// serve wires the admission/cache layers onto s, runs the HTTP listener,
// and shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight queries drain, and every resident tenant registry closes (one
// final persist checkpoint each) before exit.
func serve(s *server, logger *slog.Logger, fatal func(string, ...any), cfg serveConfig) {
	s.queryTimeout = cfg.queryTimeout
	s.slowQuery = cfg.slowQuery
	if cfg.maxInflight > 0 {
		s.gate = admit.NewGate(int64(cfg.maxInflight), cfg.queueDeadline)
	}
	if cfg.cacheEntries > 0 {
		s.cache = admit.NewCache(cfg.cacheEntries, cfg.cacheBytes)
	}

	srv := &http.Server{
		Handler:           s.handler(), // the mux behind the panic fence
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen before declaring readiness: /readyz says 200 only once the
	// socket genuinely accepts connections.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fatal("listen failed", "addr", cfg.listen, "err", err)
	}
	s.ready.Store(readyServing)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("listening", "addr", cfg.listen, "repreprocess", cfg.policy.String())
	select {
	case err := <-errc:
		fatal("listener failed", "err", err)
	case <-ctx.Done():
		stop()
		// Out of rotation first: probes see draining before any connection
		// is refused, so load balancers stop sending traffic here while the
		// in-flight queries below still complete.
		s.ready.Store(readyDraining)
		logger.Info("shutting down: draining in-flight queries", "budget", cfg.shutdownTimeout)
		// Replication streams are unbounded responses Shutdown would wait
		// out in full: close them first so replicas reconnect elsewhere
		// (or to our successor) while queries drain.
		s.pub.Close()
		sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Warn("shutdown incomplete", "err", err)
		}
		// The listener is closed; wait out searches still holding admission
		// slots, then refuse any straggler before the registries go away.
		if err := s.gate.Drain(sctx); err != nil {
			logger.Warn("admission drain incomplete", "err", err)
		}
		s.gate.Close()
		// Stop following before the registry goes away: the follower's
		// Apply path must not race Close's final checkpoint.
		s.follower.Stop()
		// Close every resident tenant: waits for background re-preprocessing
		// and writes each tenant's final persist checkpoint.
		s.cat.Close()
		logger.Info("bye", "final_epoch", s.defaultLive().Epoch)
	}
}

func load(netFile, gtfsDir, family string, scale float64) (*transit.Network, error) {
	switch {
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return transit.ReadNetwork(f)
	case gtfsDir != "":
		return transit.LoadGTFS(gtfsDir)
	case family != "":
		return transit.Generate(family, scale, 0)
	default:
		return nil, fmt.Errorf("tpserver: one of -net, -gtfs, -generate, -snapshot is required")
	}
}

func loadSnapshotFile(path string) (*transit.Network, transit.SnapshotState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, transit.SnapshotState{}, err
	}
	defer f.Close()
	n, st, err := transit.LoadSnapshot(f)
	if err != nil {
		return nil, transit.SnapshotState{}, fmt.Errorf("tpserver: %s: %w", path, err)
	}
	return n, *st, nil
}

func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}

type stationJSON struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	Transfer int     `json:"transfer_min"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
}

func (s *server) stations(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquire(r)
	if err != nil {
		s.legacyError(w, err)
		return
	}
	defer h.Release()
	n := h.Registry().Snapshot().Net
	out := make([]stationJSON, n.NumStations())
	for i := range out {
		st := n.Station(transit.StationID(i))
		out[i] = stationJSON{ID: int(st.ID), Name: st.Name, Transfer: int(st.Transfer), X: st.X, Y: st.Y}
	}
	writeJSON(w, out)
}

func parsePair(n *transit.Network, r *http.Request) (from, to transit.StationID, err error) {
	f, err1 := strconv.Atoi(r.URL.Query().Get("from"))
	t, err2 := strconv.Atoi(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil || f < 0 || t < 0 || f >= n.NumStations() || t >= n.NumStations() {
		return 0, 0, fmt.Errorf("invalid from/to")
	}
	return transit.StationID(f), transit.StationID(t), nil
}

func (s *server) arrival(w http.ResponseWriter, r *http.Request) {
	tr := s.beginTrace(w, r, transit.KindEarliestArrival)
	if err := r.Context().Err(); err != nil {
		s.legacyError(w, err) // already hung up: no admission slot, no cache fill
		return
	}
	h, err := s.acquire(r)
	if err != nil {
		s.legacyError(w, err)
		return
	}
	defer h.Release()
	tr.network = h.Name()
	snap := h.Registry().Snapshot() // one load: the whole request sees this version
	n := snap.Net
	from, to, err := parsePair(n, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dep, err := transit.ParseClock(r.URL.Query().Get("at"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	res, err := s.plan(ctx, h.Name(), snap, transit.Request{
		Kind: transit.KindEarliestArrival, From: from, To: to, Depart: dep,
		Options: transit.Options{Threads: s.threads},
	}, tr)
	if err != nil {
		s.legacyError(w, err)
		s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
		return
	}
	arr, err := res.Arrival()
	if err != nil {
		s.legacyError(w, err)
		s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
		return
	}
	resp := map[string]any{"from": from, "to": to, "depart": n.FormatClock(dep)}
	if arr.IsInf() {
		resp["reachable"] = false
	} else {
		resp["reachable"] = true
		resp["arrive"] = n.FormatClock(arr)
		resp["minutes"] = int(arr - dep)
	}
	writeJSON(w, resp)
	s.finishQuery(tr, "ok")
}

func (s *server) profile(w http.ResponseWriter, r *http.Request) {
	tr := s.beginTrace(w, r, transit.KindProfile)
	if err := r.Context().Err(); err != nil {
		s.legacyError(w, err)
		return
	}
	h, err := s.acquire(r)
	if err != nil {
		s.legacyError(w, err)
		return
	}
	defer h.Release()
	tr.network = h.Name()
	snap := h.Registry().Snapshot()
	n := snap.Net
	from, to, err := parsePair(n, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	res, err := s.plan(ctx, h.Name(), snap, transit.Request{
		Kind: transit.KindProfile, From: from, To: to,
		Options: transit.Options{Threads: s.threads},
	}, tr)
	if err != nil {
		s.legacyError(w, err)
		s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
		return
	}
	p, err := res.Profile()
	if err != nil {
		s.legacyError(w, err)
		s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
		return
	}
	st := res.Stats()
	type connJSON struct {
		Depart  string `json:"depart"`
		Arrive  string `json:"arrive"`
		Minutes int    `json:"minutes"`
	}
	conns := p.Connections()
	out := struct {
		From        transit.StationID `json:"from"`
		To          transit.StationID `json:"to"`
		Connections []connJSON        `json:"connections"`
		QueryMS     float64           `json:"query_ms"`
	}{From: from, To: to, QueryMS: float64(st.Elapsed.Microseconds()) / 1000}
	for _, c := range conns {
		out.Connections = append(out.Connections, connJSON{
			Depart:  n.FormatClock(c.Departure),
			Arrive:  n.FormatClock(c.Arrival),
			Minutes: int(c.Arrival - c.Departure),
		})
	}
	writeJSON(w, out)
	s.finishQuery(tr, "ok")
}

func (s *server) journey(w http.ResponseWriter, r *http.Request) {
	tr := s.beginTrace(w, r, transit.KindJourney)
	if err := r.Context().Err(); err != nil {
		s.legacyError(w, err)
		return
	}
	h, err := s.acquire(r)
	if err != nil {
		s.legacyError(w, err)
		return
	}
	defer h.Release()
	tr.network = h.Name()
	snap := h.Registry().Snapshot()
	n := snap.Net
	from, to, err := parsePair(n, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dep, err := transit.ParseClock(r.URL.Query().Get("at"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	res, err := s.plan(ctx, h.Name(), snap, transit.Request{
		Kind: transit.KindJourney, From: from, To: to, Depart: dep,
		Options: transit.Options{Threads: s.threads},
	}, tr)
	if err != nil {
		s.legacyError(w, err) // unreachable maps to 404, as before
		s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
		return
	}
	j, err := res.Journey()
	if err != nil {
		s.legacyError(w, err)
		s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
		return
	}
	type legJSON struct {
		Train  string `json:"train"`
		From   string `json:"from"`
		Depart string `json:"depart"`
		To     string `json:"to"`
		Arrive string `json:"arrive"`
		Stops  int    `json:"stops"`
	}
	out := struct {
		Transfers int       `json:"transfers"`
		Legs      []legJSON `json:"legs"`
	}{Transfers: j.Transfers()}
	for _, l := range j.Legs {
		out.Legs = append(out.Legs, legJSON{
			Train: l.Train, From: l.FromName, Depart: n.FormatClock(l.Departure),
			To: l.ToName, Arrive: n.FormatClock(l.Arrival), Stops: l.Stops,
		})
	}
	writeJSON(w, out)
	s.finishQuery(tr, "ok")
}

// delayOpJSON is the wire form of one POST /delays operation. Either a
// single "route" or a "routes" list selects route classes.
type delayOpJSON struct {
	Train    string `json:"train,omitempty"`
	Route    *int   `json:"route,omitempty"`
	Routes   []int  `json:"routes,omitempty"`
	From     string `json:"from,omitempty"` // departure window start, "HH:MM"
	To       string `json:"to,omitempty"`   // departure window end, "HH:MM"
	DelayMin int    `json:"delay_min,omitempty"`
	Cancel   bool   `json:"cancel,omitempty"`
}

func (s *server) delays(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		// Replicas are read-only: the delay feed belongs on the updater,
		// whose URL travels in the Location header as a redirect hint.
		w.Header().Set("Location", s.followURL+"/delays")
		s.v1Error(w, &transit.Error{
			Code:    transit.CodeReadOnly,
			Message: "replica is read-only; POST delay batches to the updater at " + s.followURL,
		})
		return
	}
	h, err := s.acquire(r)
	if err != nil {
		s.legacyError(w, err)
		return
	}
	defer h.Release()
	var req struct {
		Ops []delayOpJSON `json:"ops"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad delay batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty delay batch", http.StatusBadRequest)
		return
	}
	ops := make([]transit.DelayOp, len(req.Ops))
	for i, o := range req.Ops {
		op := transit.DelayOp{Train: o.Train, Routes: o.Routes, Delay: transit.Ticks(o.DelayMin), Cancel: o.Cancel}
		if o.Route != nil {
			op.Routes = append(op.Routes, *o.Route)
		}
		if o.From != "" {
			t, err := transit.ParseClock(o.From)
			if err != nil {
				http.Error(w, fmt.Sprintf("op %d: %v", i, err), http.StatusBadRequest)
				return
			}
			op.WindowFrom = t
		}
		if o.To != "" {
			t, err := transit.ParseClock(o.To)
			if err != nil {
				http.Error(w, fmt.Sprintf("op %d: %v", i, err), http.StatusBadRequest)
				return
			}
			op.WindowTo = t
		}
		ops[i] = op
	}
	snap, st, err := h.Registry().Apply(ops)
	switch {
	case err == nil:
	case errors.Is(err, live.ErrClosed), errors.Is(err, live.ErrJournal):
		// Shutting down, or the batch could not be made durable (journal
		// append failed — nothing was applied): tell feed clients to retry,
		// here or against the next instance, rather than drop the batch as
		// malformed.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, live.ErrReprocess):
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"network":          h.Name(),
		"epoch":            snap.Epoch,
		"trains_delayed":   st.TrainsDelayed,
		"trains_cancelled": st.TrainsCancelled,
		"conns_retimed":    st.ConnsRetimed,
		"conns_cancelled":  st.ConnsCancelled,
		"update_ms":        float64(st.Elapsed.Microseconds()) / 1000,
		"preprocessed":     snap.Preprocessed(),
	})
}

func (s *server) version(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquire(r)
	if err != nil {
		s.legacyError(w, err)
		return
	}
	defer h.Release()
	snap := h.Registry().Snapshot()
	st := snap.Net.Timetable().Stats()
	writeJSON(w, map[string]any{
		"network":      h.Name(),
		"epoch":        snap.Epoch,
		"created":      snap.Created.UTC().Format(time.RFC3339Nano),
		"preprocessed": snap.Preprocessed(),
		"stations":     st.Stations,
		"trains":       st.Trains,
		"connections":  st.Connections,
	})
}

// metrics serves the obs registry: full Prometheus text exposition with
// # HELP/# TYPE metadata, latency histogram families, runtime series, and
// every flat series the handler used to print by hand (same names, same
// integer rendering — existing greps and scrapers keep working).
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	s.obs.reg.ServeHTTP(w, r)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("tpserver: response encode failed", "err", err)
	}
}

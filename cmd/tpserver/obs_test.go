package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"transit"
	"transit/internal/admit"
	"transit/internal/obs"
)

// TestMetricsExposition drives a few queries and then checks that /metrics
// serves well-formed Prometheus text exposition (the strict parser rejects
// duplicate series, metadata-after-samples, and malformed histograms) with
// every histogram family the dashboards scrape.
func TestMetricsExposition(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	s.cache = admit.NewCache(16, 0)
	s.gate = admit.NewGate(4, 50*time.Millisecond)
	if rec := get(t, mux, "/v1/arrival?from=0&to=1&depart=08:30"); rec.Code != http.StatusOK {
		t.Fatalf("arrival: %d %s", rec.Code, rec.Body.String())
	}
	// Second identical query: a cache hit, so the hit path feeds the
	// cache-lookup histogram without a search.
	if rec := get(t, mux, "/v1/arrival?from=0&to=1&depart=08:30"); rec.Code != http.StatusOK {
		t.Fatalf("arrival (cached): %d %s", rec.Code, rec.Body.String())
	}
	// Legacy endpoint, different departure so it misses the cache and runs
	// its own admitted search.
	if rec := get(t, mux, "/arrival?from=0&to=1&at=09:30"); rec.Code != http.StatusOK {
		t.Fatalf("legacy arrival: %d %s", rec.Code, rec.Body.String())
	}

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	exp, err := obs.Parse(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, rec.Body.String())
	}

	for _, name := range []string{
		"tpserver_request_duration_seconds",
		"tpserver_query_duration_seconds",
		"tpserver_queue_wait_seconds",
		"tpserver_search_seconds",
		"tpserver_cache_lookup_seconds",
		"tpserver_search_settled_labels",
	} {
		fam, ok := exp.Families[name]
		if !ok {
			t.Errorf("family %s missing", name)
			continue
		}
		if fam.Type != "histogram" {
			t.Errorf("family %s has type %s, want histogram", name, fam.Type)
		}
	}

	// The per-endpoint and per-kind histograms saw the traffic above.
	snap, ok := exp.Families["tpserver_request_duration_seconds"].
		HistogramSnapshot(map[string]string{"endpoint": "v1_arrival"})
	if !ok || snap.Count != 2 {
		t.Errorf("endpoint histogram count = %d (ok=%v), want 2", snap.Count, ok)
	}
	snap, ok = exp.Families["tpserver_query_duration_seconds"].
		HistogramSnapshot(map[string]string{"kind": string(transit.KindEarliestArrival)})
	if !ok || snap.Count != 3 {
		t.Errorf("kind histogram count = %d (ok=%v), want 3", snap.Count, ok)
	}
	// Queue wait is observed once per admitted search: two misses, one hit.
	qsnap, ok := exp.Families["tpserver_queue_wait_seconds"].HistogramSnapshot(nil)
	if !ok || qsnap.Count != 2 {
		t.Errorf("queue wait count = %d (ok=%v), want 2 (hits skip the gate)", qsnap.Count, ok)
	}

	// Legacy flat series keep their exact names and values.
	if v, ok := exp.Value("tpserver_snapshot_epoch"); !ok || v != 0 {
		t.Errorf("tpserver_snapshot_epoch = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := exp.Value("tpserver_cache_hits_total"); !ok || v != 1 {
		t.Errorf("tpserver_cache_hits_total = %v (ok=%v), want 1", v, ok)
	}
	for _, name := range []string{"go_goroutines", "go_heap_alloc_bytes",
		"tpserver_workspace_pool_gets_total", "tpserver_last_epoch_apply_timestamp_seconds"} {
		if _, ok := exp.Value(name); !ok {
			t.Errorf("runtime series %s missing", name)
		}
	}
}

// TestTraceHeaders: every query answer carries X-Trace-Id, /v1 answers also
// carry the Server-Timing stage breakdown, and a well-formed inbound trace
// ID is adopted while a malformed one is replaced.
func TestTraceHeaders(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))

	rec := get(t, mux, "/v1/arrival?from=0&to=1&depart=08:30")
	if rec.Code != http.StatusOK {
		t.Fatalf("arrival: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Error("missing X-Trace-Id")
	}
	st := rec.Header().Get("Server-Timing")
	for _, stage := range []string{"queue;dur=", "cache;dur=", "search;dur=", "encode;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("Server-Timing %q missing stage %q", st, stage)
		}
	}

	// Error responses are traced too.
	rec = get(t, mux, "/v1/arrival?from=0&to=99&depart=08:30")
	if rec.Code == http.StatusOK {
		t.Fatal("expected error status")
	}
	if rec.Header().Get("X-Trace-Id") == "" || rec.Header().Get("Server-Timing") == "" {
		t.Error("error response lost trace headers")
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/arrival?from=0&to=1&depart=08:30", nil)
	req.Header.Set("X-Trace-Id", "caller-trace.1")
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if got := w.Header().Get("X-Trace-Id"); got != "caller-trace.1" {
		t.Errorf("inbound trace ID not adopted: got %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/arrival?from=0&to=1&depart=08:30", nil)
	req.Header.Set("X-Trace-Id", "bad id with spaces")
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if got := w.Header().Get("X-Trace-Id"); got == "bad id with spaces" || got == "" {
		t.Errorf("malformed inbound trace ID not replaced: got %q", got)
	}
}

// TestDebugTrace: ?debug=trace returns the inline stage breakdown with the
// search-effort counters of the query that ran.
func TestDebugTrace(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	s.cache = admit.NewCache(16, 0)

	rec := get(t, mux, "/v1/arrival?from=0&to=1&depart=08:30&debug=trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("arrival: %d %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Trace *struct {
			TraceID string  `json:"trace_id"`
			Cache   string  `json:"cache"`
			TotalMS float64 `json:"total_ms"`
			Effort  *struct {
				ConnsScanned  int64 `json:"conns_scanned"`
				LabelsSettled int64 `json:"labels_settled"`
				Rounds        int64 `json:"rounds"`
			} `json:"effort"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatalf("no trace block in %s", rec.Body.String())
	}
	if out.Trace.TraceID != rec.Header().Get("X-Trace-Id") {
		t.Errorf("trace_id %q != header %q", out.Trace.TraceID, rec.Header().Get("X-Trace-Id"))
	}
	if out.Trace.Cache != "miss" {
		t.Errorf("cache = %q, want miss", out.Trace.Cache)
	}
	if out.Trace.Effort == nil {
		t.Fatal("no effort block on a query that searched")
	}
	if out.Trace.Effort.Rounds == 0 || out.Trace.Effort.ConnsScanned == 0 {
		t.Errorf("empty effort counters: %+v", *out.Trace.Effort)
	}

	// A cache hit reports outcome "hit" and no effort (no search ran).
	// Decode into a zero value: Unmarshal would leave the first response's
	// effort in place for a field the second response omits.
	rec = get(t, mux, "/v1/arrival?from=0&to=1&depart=08:30&debug=trace")
	hit := out
	hit.Trace = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &hit); err != nil {
		t.Fatal(err)
	}
	if hit.Trace == nil || hit.Trace.Cache != "hit" {
		t.Fatalf("second query trace = %+v, want cache hit", hit.Trace)
	}
	if hit.Trace.Effort != nil {
		t.Errorf("cache hit carries effort block: %+v", *hit.Trace.Effort)
	}

	// Without ?debug=trace the body has no trace key (wire compatibility).
	rec = get(t, mux, "/v1/arrival?from=0&to=1&depart=09:30")
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Errorf("undebugged response leaks trace block: %s", rec.Body.String())
	}
}

// TestSlowQueryLog: with -slow-query set below the query's duration, the
// structured log records the stage breakdown and effort counters.
func TestSlowQueryLog(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	var buf bytes.Buffer
	s.logger = slog.New(slog.NewJSONHandler(&buf, nil))
	s.slowQuery = time.Nanosecond // everything is slow

	if rec := get(t, mux, "/v1/arrival?from=0&to=1&depart=08:30"); rec.Code != http.StatusOK {
		t.Fatalf("arrival: %d %s", rec.Code, rec.Body.String())
	}
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow-query log is not one JSON object: %v\n%s", err, buf.String())
	}
	if entry["msg"] != "slow query" {
		t.Errorf("msg = %v", entry["msg"])
	}
	for _, key := range []string{"trace_id", "kind", "cache", "outcome", "total_ms",
		"queue_wait_ms", "cache_lookup_ms", "search_ms", "encode_ms",
		"conns_scanned", "labels_settled", "rounds"} {
		if _, ok := entry[key]; !ok {
			t.Errorf("slow-query log missing %q: %v", key, entry)
		}
	}
	if entry["kind"] != string(transit.KindEarliestArrival) {
		t.Errorf("kind = %v", entry["kind"])
	}
	if entry["outcome"] != "ok" {
		t.Errorf("outcome = %v", entry["outcome"])
	}

	// Below the threshold nothing is logged.
	buf.Reset()
	s.slowQuery = time.Hour
	get(t, mux, "/v1/arrival?from=0&to=1&depart=09:30")
	if buf.Len() != 0 {
		t.Errorf("fast query logged: %s", buf.String())
	}
}

// TestNewLogger covers the -log-format switch.
func TestNewLogger(t *testing.T) {
	for _, ok := range []string{"", "text", "json"} {
		if _, err := newLogger(ok); err != nil {
			t.Errorf("newLogger(%q): %v", ok, err)
		}
	}
	if _, err := newLogger("xml"); err == nil {
		t.Error("newLogger(xml) accepted")
	}
}

func TestSanitizeTraceID(t *testing.T) {
	cases := map[string]string{
		"":                      "",
		"abc-DEF_1.2":           "abc-DEF_1.2",
		"has space":             "",
		"semi;colon":            "",
		strings.Repeat("x", 65): "",
		strings.Repeat("x", 64): strings.Repeat("x", 64),
	}
	for in, want := range cases {
		if got := sanitizeTraceID(in); got != want {
			t.Errorf("sanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"transit"
)

// normalizeV1 parses a /v1 JSON body and zeroes the only nondeterministic
// field (query_ms), so bodies can be compared byte-for-byte against
// goldens.
func normalizeV1(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if _, ok := m["query_ms"]; ok {
		m["query_ms"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// golden asserts status and the normalized body.
func golden(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int, want string) {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status %d, want %d: %s", rec.Code, wantStatus, rec.Body.String())
	}
	if got := normalizeV1(t, rec.Body.Bytes()); got != want {
		t.Fatalf("body mismatch\ngot:  %s\nwant: %s", got, want)
	}
}

// TestV1ArrivalGolden pins the /v1/arrival wire format, POST and GET, by
// ID and by name, reachable and not.
func TestV1ArrivalGolden(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	// JSON object key order is canonicalized by normalizeV1 (map marshal
	// sorts keys), so the goldens are built the same way.
	want := canonical(t, `{"from":{"id":0,"name":"A"},"to":{"id":1,"name":"B"},"depart":"08:15","reachable":true,"arrive":"09:30","minutes":75,"query_ms":0}`)

	golden(t, post(t, mux, "/v1/arrival", `{"from":0,"to":"B","depart":"08:15"}`), 200, want)
	golden(t, get(t, mux, "/v1/arrival?from=0&to=1&at=08:15"), 200, want)
	golden(t, get(t, mux, "/v1/arrival?from=A&to=B&depart=08:15"), 200, want)

	// B has no outgoing trains: unreachable, still a 200 (absence of a
	// connection is an answer, not an error).
	wantUnreachable := canonical(t, `{"from":{"id":1,"name":"B"},"to":{"id":0,"name":"A"},"depart":"08:15","reachable":false,"minutes":0,"query_ms":0}`)
	golden(t, post(t, mux, "/v1/arrival", `{"from":1,"to":0,"depart":"08:15"}`), 200, wantUnreachable)
}

// TestV1ProfileGolden pins /v1/profile: all 17 hourly connections.
func TestV1ProfileGolden(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	var conns []string
	for h := 6; h <= 22; h++ {
		conns = append(conns, fmt.Sprintf(`{"depart":"%02d:00","arrive":"%02d:30","minutes":30}`, h, h))
	}
	want := canonical(t, `{"from":{"id":0,"name":"A"},"to":{"id":1,"name":"B"},"connections":[`+
		strings.Join(conns, ",")+`],"walk_minutes":-1,"query_ms":0}`)
	golden(t, post(t, mux, "/v1/profile", `{"from":"A","to":"B"}`), 200, want)
	golden(t, get(t, mux, "/v1/profile?from=0&to=1"), 200, want)
}

// TestV1JourneyGolden pins /v1/journey, success and the unreachable error
// envelope.
func TestV1JourneyGolden(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	want := canonical(t, `{"from":{"id":0,"name":"A"},"to":{"id":1,"name":"B"},"depart":"10:05","transfers":0,"legs":[
		{"train":"h11","from":{"id":0,"name":"A"},"depart":"11:00","to":{"id":1,"name":"B"},"arrive":"11:30","stops":1}
	],"query_ms":0}`)
	golden(t, post(t, mux, "/v1/journey", `{"from":0,"to":1,"depart":"10:05"}`), 200, want)

	rec := post(t, mux, "/v1/journey", `{"from":1,"to":0,"depart":"10:05"}`)
	if rec.Code != 404 {
		t.Fatalf("unreachable journey: status %d: %s", rec.Code, rec.Body.String())
	}
	assertErrorCode(t, rec, transit.CodeUnreachable)
}

// TestV1ParetoGolden pins /v1/pareto on the single-ride network.
func TestV1ParetoGolden(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	want := canonical(t, `{"from":{"id":0,"name":"A"},"to":{"id":1,"name":"B"},"depart":"07:45","max_transfers":2,
		"choices":[{"transfers":0,"arrive":"08:30","minutes":45}],"query_ms":0}`)
	golden(t, post(t, mux, "/v1/pareto", `{"from":0,"to":1,"depart":"07:45","max_transfers":2}`), 200, want)
	golden(t, get(t, mux, "/v1/pareto?from=0&to=1&depart=07:45&max_transfers=2"), 200, want)
}

// TestV1MatrixGolden pins /v1/matrix, including the self-pair zero and the
// unreachable -1.
func TestV1MatrixGolden(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	want := canonical(t, `{"depart":"08:00","sources":[{"id":0,"name":"A"},{"id":1,"name":"B"}],
		"targets":[{"id":0,"name":"A"},{"id":1,"name":"B"}],
		"minutes":[[0,30],[-1,0]],"query_ms":0}`)
	golden(t, post(t, mux, "/v1/matrix", `{"sources":[0,"B"],"targets":["A",1],"depart":"08:00"}`), 200, want)

	// GET is not accepted for the batch endpoint.
	if rec := get(t, mux, "/v1/matrix?from=0"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/matrix: status %d", rec.Code)
	}
}

// TestV1StationsGolden pins GET /v1/stations.
func TestV1StationsGolden(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	want := canonical(t, `{"stations":[
		{"id":0,"name":"A","transfer_min":2,"x":0,"y":0},
		{"id":1,"name":"B","transfer_min":2,"x":0,"y":0}
	]}`)
	golden(t, get(t, mux, "/v1/stations"), 200, want)
}

// assertErrorCode decodes the error envelope and checks its code.
func assertErrorCode(t *testing.T, rec *httptest.ResponseRecorder, code transit.ErrorCode) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Field   string `json:"field"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error envelope is not JSON: %v\n%s", err, rec.Body.String())
	}
	if env.Error.Code != string(code) {
		t.Fatalf("error code %q, want %q (%s)", env.Error.Code, code, rec.Body.String())
	}
	if env.Error.Message == "" {
		t.Fatalf("error envelope without message: %s", rec.Body.String())
	}
}

// TestV1ErrorCodes exercises every machine-readable error code reachable
// over the wire, with its HTTP status.
func TestV1ErrorCodes(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	cases := []struct {
		name   string
		do     func() *httptest.ResponseRecorder
		status int
		code   transit.ErrorCode
	}{
		{"missing from", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"to":1}`)
		}, 400, transit.CodeInvalidRequest},
		{"bad body", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"from":`)
		}, 400, transit.CodeInvalidRequest},
		{"unknown field", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"from":0,"to":1,"teleport":true}`)
		}, 400, transit.CodeInvalidRequest},
		{"unknown station name", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"from":"Nowhere","to":1}`)
		}, 400, transit.CodeUnknownStation},
		{"station out of range", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"from":7,"to":1}`)
		}, 400, transit.CodeStationRange},
		{"bad time", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"from":0,"to":1,"depart":"noonish"}`)
		}, 400, transit.CodeBadTime},
		{"window on arrival", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/arrival", `{"from":0,"to":1,"window_from":"08:00","window_to":"10:00"}`)
		}, 400, transit.CodeBadWindow},
		{"transfers on profile", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/profile", `{"from":0,"to":1,"max_transfers":3}`)
		}, 400, transit.CodeBadTransfers},
		{"pareto budget out of range", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/pareto", `{"from":0,"to":1,"max_transfers":99}`)
		}, 400, transit.CodeBadTransfers},
		{"matrix without targets", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/matrix", `{"sources":[0],"depart":"08:00"}`)
		}, 400, transit.CodeInvalidRequest},
		{"journey unreachable", func() *httptest.ResponseRecorder {
			return post(t, mux, "/v1/journey", `{"from":1,"to":0,"depart":"08:00"}`)
		}, 404, transit.CodeUnreachable},
	}
	for _, tc := range cases {
		rec := tc.do()
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.status, rec.Body.String())
		}
		assertErrorCode(t, rec, tc.code)
	}
}

// TestV1CancelledClient sends a request whose context is already cancelled
// — the HTTP shape of a client that disconnected — and expects the typed
// cancellation envelope plus a tick of queries_cancelled_total.
func TestV1CancelledClient(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/profile",
		strings.NewReader(`{"from":0,"to":1}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("status %d, want 499: %s", rec.Code, rec.Body.String())
	}
	assertErrorCode(t, rec, transit.CodeCancelled)
	if got := s.cancelled.Load(); got != 1 {
		t.Fatalf("queries_cancelled_total = %d, want 1", got)
	}
	// The metric is exported.
	metrics := get(t, mux, "/metrics").Body.String()
	if !strings.Contains(metrics, "tpserver_queries_cancelled_total 1") {
		t.Fatalf("metric missing from /metrics:\n%s", metrics)
	}
}

// TestV1DeadlineExceeded runs a deliberately oversized matrix under a 1 ms
// deadline on a larger network; the search must be aborted mid-flight with
// the deadline envelope and counted.
func TestV1DeadlineExceeded(t *testing.T) {
	n, err := transit.Generate("oahu", 0.35, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, mux := serverFor(t, n)
	var sources []string
	for i := 0; i < n.NumStations(); i++ {
		sources = append(sources, fmt.Sprintf("%d", i))
	}
	body := fmt.Sprintf(`{"sources":[%s],"targets":[%s],"depart":"08:00"}`,
		strings.Join(sources, ","), strings.Join(sources[:3], ","))
	req := httptest.NewRequest(http.MethodPost, "/v1/matrix", strings.NewReader(body))
	req.Header.Set(deadlineHeader, "1")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 504 {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	assertErrorCode(t, rec, transit.CodeDeadlineExceeded)
	if s.cancelled.Load() == 0 {
		t.Fatal("queries_cancelled_total not incremented")
	}
}

// TestV1LegacyEquivalence verifies the deprecated endpoints still answer
// exactly like before — and exactly like their /v1 successors — now that
// both are wrappers over Plan.
func TestV1LegacyEquivalence(t *testing.T) {
	_, mux := serverFor(t, hourlyNetwork(t))
	legacy := get(t, mux, "/arrival?from=0&to=1&at=08:15")
	if legacy.Code != 200 {
		t.Fatalf("legacy arrival: %d", legacy.Code)
	}
	if legacy.Header().Get("Deprecation") != "true" {
		t.Fatal("legacy endpoint missing Deprecation header")
	}
	if got := legacy.Header().Get("Link"); !strings.Contains(got, "/v1/arrival") {
		t.Fatalf("legacy Link header = %q", got)
	}
	var l map[string]any
	if err := json.Unmarshal(legacy.Body.Bytes(), &l); err != nil {
		t.Fatal(err)
	}
	v1 := get(t, mux, "/v1/arrival?from=0&to=1&at=08:15")
	var v map[string]any
	if err := json.Unmarshal(v1.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if l["arrive"] != v["arrive"] || l["minutes"] != v["minutes"] || l["reachable"] != v["reachable"] {
		t.Fatalf("legacy %v vs v1 %v", l, v)
	}
}

// canonical re-marshals a JSON literal through a map, giving the same key
// order normalizeV1 produces.
func canonical(t *testing.T, s string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		t.Fatalf("bad golden literal: %v\n%s", err, s)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// The versioned /v1 JSON API: typed request/response structs (api/v1), a
// structured error envelope with machine-readable codes, per-request
// deadlines, and context cancellation threaded into the search loops. The
// wire format is specified in docs/API.md.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"transit"
	apiv1 "transit/api/v1"
)

// deadlineHeader is the client-supplied per-request deadline in
// milliseconds. It can shorten the server default (-query-timeout), never
// extend it.
const deadlineHeader = "X-Deadline-Ms"

// maxMatrixCells bounds a /v1/matrix batch (sources × targets): a matrix
// request is the one endpoint whose cost the client controls
// quadratically.
const maxMatrixCells = 16384

// queryContext derives the context a query runs under: the request's own
// context (cancelled when the client disconnects), bounded by the client
// deadline header or the server default.
func (s *server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.queryTimeout
	if h := r.Header.Get(deadlineHeader); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			d := time.Duration(ms) * time.Millisecond
			if timeout <= 0 || d < timeout {
				timeout = d
			}
		}
	}
	if timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// v1Error writes the structured error envelope and counts abandoned
// queries. Overload rejections additionally carry the Retry-After back-off
// header.
func (s *server) v1Error(w http.ResponseWriter, err error) {
	code := transit.ErrorCodeOf(err)
	if code == transit.CodeCancelled || code == transit.CodeDeadlineExceeded {
		s.cancelled.Add(1)
	}
	setRetryAfter(w, err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(apiv1.HTTPStatus(code))
	if err := json.NewEncoder(w).Encode(apiv1.NewErrorResponse(err)); err != nil {
		slog.Error("tpserver: encode error envelope failed", "err", err)
	}
}

// v1TraceError is v1Error for a traced query: the stage timings collected
// so far still travel on Server-Timing, and the failure closes out the
// trace (per-kind histogram + slow-query log) under the error's code.
func (s *server) v1TraceError(w http.ResponseWriter, tr *qtrace, err error) {
	w.Header().Set("Server-Timing", tr.serverTiming())
	s.v1Error(w, err)
	s.finishQuery(tr, string(transit.ErrorCodeOf(err)))
}

// stationRefParam turns a query parameter into a station reference: all
// digits means ID, anything else an exact name.
func stationRefParam(v string) *apiv1.StationRef {
	if v == "" {
		return nil
	}
	if id, err := strconv.Atoi(v); err == nil {
		ref := apiv1.ByID(id)
		return &ref
	}
	ref := apiv1.ByName(v)
	return &ref
}

// decodePlanRequest builds the wire request from a GET query string or a
// POST JSON body (unknown fields rejected).
func decodePlanRequest(w http.ResponseWriter, r *http.Request) (*apiv1.PlanRequest, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		p := &apiv1.PlanRequest{
			From:       stationRefParam(q.Get("from")),
			To:         stationRefParam(q.Get("to")),
			Depart:     q.Get("depart"),
			WindowFrom: q.Get("window_from"),
			WindowTo:   q.Get("window_to"),
		}
		if p.Depart == "" {
			p.Depart = q.Get("at") // legacy-compatible alias
		}
		if mt := q.Get("max_transfers"); mt != "" {
			v, err := strconv.Atoi(mt)
			if err != nil {
				return nil, &transit.Error{
					Code: transit.CodeBadTransfers, Field: "max_transfers",
					Message: fmt.Sprintf("bad max_transfers %q", mt),
				}
			}
			p.MaxTransfers = v
		}
		return p, nil
	case http.MethodPost:
		p := &apiv1.PlanRequest{}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil {
			return nil, &transit.Error{
				Code:    transit.CodeInvalidRequest,
				Message: "bad request body: " + err.Error(),
			}
		}
		return p, nil
	default:
		return nil, &transit.Error{
			Code: transit.CodeInvalidRequest, Message: "use GET or POST",
		}
	}
}

// v1Query is the shared handler shape of the /v1 query endpoints: decode,
// resolve against the current snapshot, Plan under the request context,
// render.
func (s *server) v1Query(kind transit.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := s.beginTrace(w, r, kind)
		// A client that already hung up gets no admission slot and no cache
		// fill: reject before any work is priced or queued.
		if err := r.Context().Err(); err != nil {
			s.v1TraceError(w, tr, err)
			return
		}
		h, err := s.acquire(r)
		if err != nil {
			s.v1TraceError(w, tr, err)
			return
		}
		defer h.Release()
		tr.network = h.Name()
		snap := h.Registry().Snapshot() // one load: the whole request sees this version
		n := snap.Net
		preq, err := decodePlanRequest(w, r)
		if err != nil {
			s.v1TraceError(w, tr, err)
			return
		}
		req, err := preq.Resolve(n, kind, transit.Options{Threads: s.threads})
		if err != nil {
			s.v1TraceError(w, tr, err)
			return
		}
		if kind == transit.KindMatrix && len(req.Sources)*len(req.Targets) > maxMatrixCells {
			s.v1TraceError(w, tr, &transit.Error{
				Code: transit.CodeInvalidRequest, Field: "sources",
				Message: fmt.Sprintf("matrix of %d×%d cells exceeds the %d-cell limit",
					len(req.Sources), len(req.Targets), maxMatrixCells),
			})
			return
		}
		ctx, cancel := s.queryContext(r)
		defer cancel()
		res, err := s.plan(ctx, h.Name(), snap, req, tr)
		if err != nil {
			s.v1TraceError(w, tr, err)
			return
		}
		var body any
		switch kind {
		case transit.KindEarliestArrival:
			body, err = apiv1.NewArrivalResponse(n, req, res)
		case transit.KindProfile:
			body, err = apiv1.NewProfileResponse(n, req, res)
		case transit.KindJourney:
			body, err = apiv1.NewJourneyResponse(n, req, res)
		case transit.KindPareto:
			body, err = apiv1.NewParetoResponse(n, req, res)
		case transit.KindMatrix:
			body, err = apiv1.NewMatrixResponse(n, req, res)
		}
		if err != nil {
			s.v1TraceError(w, tr, err)
			return
		}
		// Marshal once, timed — the encode stage. json.Marshal + "\n" is
		// byte-identical to the json.Encoder output the endpoint used
		// before, so golden wire tests are unaffected.
		encStart := time.Now()
		buf, err := json.Marshal(body)
		tr.encode = time.Since(encStart)
		if err != nil {
			s.v1TraceError(w, tr, transit.NewError(transit.CodeInternal, "response encoding failed", err))
			return
		}
		if tr.debug {
			// ?debug=trace: attach the stage breakdown (including the first
			// encode's duration) and re-marshal.
			if b, ok := body.(interface{ SetTrace(*apiv1.Trace) }); ok {
				b.SetTrace(tr.wire())
				if buf2, err := json.Marshal(body); err == nil {
					buf = buf2
				}
			}
		}
		w.Header().Set("Server-Timing", tr.serverTiming())
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
		w.Write([]byte{'\n'})
		s.finishQuery(tr, "ok")
	}
}

// v1Stations serves the station list.
func (s *server) v1Stations(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquire(r)
	if err != nil {
		s.v1Error(w, err)
		return
	}
	defer h.Release()
	writeJSON(w, apiv1.NewStationsResponse(h.Registry().Snapshot().Net))
}

// v1Networks lists the catalog: every tenant the server can answer for,
// with residency, epoch and size. Cold tenants are reported without being
// loaded.
func (s *server) v1Networks(w http.ResponseWriter, r *http.Request) {
	resp := &apiv1.NetworksResponse{}
	for _, name := range s.cat.Names() {
		m, ok := s.cat.NetworkMetrics(name)
		if !ok {
			continue
		}
		resp.Networks = append(resp.Networks, apiv1.NetworkInfo{
			Name:          name,
			Default:       name == s.defaultNet,
			Resident:      m.Resident,
			Epoch:         m.Live.Epoch,
			SnapshotBytes: m.SizeBytes,
		})
	}
	writeJSON(w, resp)
}

// registerV1 wires the /v1 routes into the mux. Every query route exists
// twice: un-prefixed (answered by the default network, as before the
// catalog) and under /v1/{network}/ addressing a tenant by name. The two
// pattern sets are disjoint by segment count, so the mux never conflicts.
func registerV1(mux *http.ServeMux, s *server) {
	mux.HandleFunc("/v1/arrival", s.count("v1_arrival", s.v1Query(transit.KindEarliestArrival)))
	mux.HandleFunc("/v1/profile", s.count("v1_profile", s.v1Query(transit.KindProfile)))
	mux.HandleFunc("/v1/journey", s.count("v1_journey", s.v1Query(transit.KindJourney)))
	mux.HandleFunc("/v1/pareto", s.count("v1_pareto", s.v1Query(transit.KindPareto)))
	mux.HandleFunc("POST /v1/matrix", s.count("v1_matrix", s.v1Query(transit.KindMatrix)))
	mux.HandleFunc("GET /v1/stations", s.count("v1_stations", s.v1Stations))
	mux.HandleFunc("GET /v1/networks", s.count("v1_networks", s.v1Networks))
	mux.HandleFunc("/v1/{network}/arrival", s.count("v1_network_arrival", s.v1Query(transit.KindEarliestArrival)))
	mux.HandleFunc("/v1/{network}/profile", s.count("v1_network_profile", s.v1Query(transit.KindProfile)))
	mux.HandleFunc("/v1/{network}/journey", s.count("v1_network_journey", s.v1Query(transit.KindJourney)))
	mux.HandleFunc("/v1/{network}/pareto", s.count("v1_network_pareto", s.v1Query(transit.KindPareto)))
	mux.HandleFunc("POST /v1/{network}/matrix", s.count("v1_network_matrix", s.v1Query(transit.KindMatrix)))
	mux.HandleFunc("GET /v1/{network}/stations", s.count("v1_network_stations", s.v1Stations))
}

// deprecated marks a legacy endpoint's response with its /v1 successor, per
// the deprecation policy in docs/API.md. The legacy endpoints remain thin
// wrappers over the same Plan path.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// legacyError renders an error the way the legacy endpoints always did —
// plain text, no envelope — while sharing the status mapping and the
// cancellation metric with /v1.
func (s *server) legacyError(w http.ResponseWriter, err error) {
	code := transit.ErrorCodeOf(err)
	if code == transit.CodeCancelled || code == transit.CodeDeadlineExceeded {
		s.cancelled.Add(1)
	}
	setRetryAfter(w, err)
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "transit: ")
	http.Error(w, msg, apiv1.HTTPStatus(code))
}

// Replication routes — the HTTP surface of the updater/replica split
// (docs/REPLICATION.md). An updater serves the delta stream and the full
// snapshot; both roles serve a status document. A server with no
// replication role (catalog mode) registers none of these.
package main

import (
	"net/http"

	apiv1 "transit/api/v1"
)

// registerReplication registers the replication endpoints the server's
// role calls for.
func registerReplication(mux *http.ServeMux, s *server) {
	if s.pub != nil {
		// The stream endpoint deliberately skips the admission gate and
		// cache: it is not query work, it is one long-lived response per
		// replica, bounded by the subscriber buffer rather than a slot.
		mux.HandleFunc("GET /v1/replication/stream", s.count("replication_stream", s.pub.ServeStream))
		mux.HandleFunc("GET /v1/replication/snapshot", s.count("replication_snapshot", s.pub.ServeSnapshot))
	}
	if s.pub != nil || s.follower != nil {
		mux.HandleFunc("GET /v1/replication/status", s.count("replication_status", s.replicationStatus))
	}
}

// replicationStatus serves GET /v1/replication/status for either role.
func (s *server) replicationStatus(w http.ResponseWriter, r *http.Request) {
	resp := s.replicationStatusBody()
	writeJSON(w, resp)
}

func (s *server) replicationStatusBody() apiv1.ReplicationStatus {
	st := apiv1.ReplicationStatus{Epoch: s.defaultLive().Epoch}
	if s.follower != nil {
		st.Role = "replica"
		st.UpdaterURL = s.followURL
		st.LagEpochs, st.LagKnown = s.follower.Lag()
		st.DeltasApplied = s.follower.DeltasApplied()
		st.Reconnects = s.follower.Reconnects()
		st.SnapshotFetches = s.follower.SnapshotFetches()
		st.Divergences = s.follower.Divergences()
		return st
	}
	st.Role = "updater"
	st.Subscribers = s.pub.Subscribers()
	st.RetainedFloor = s.pub.Floor()
	st.DeltasSent = s.pub.DeltasSent()
	st.SnapshotsServed = s.pub.SnapshotsServed()
	return st
}

// Command tploadgen drives a running tpserver with open-loop load: it
// offers requests at a fixed rate — zipf-skewed station popularity, a
// small departure-time pool, a configurable arrival/journey/profile mix —
// regardless of how fast the server answers, and reports throughput,
// latency percentiles, shed rate and cache hit rate. Because the loop is
// open, pushing -rate past the server's saturation point shows the
// admission layer doing its job: answered requests keep bounded latency
// while the excess comes back as clean 429s with Retry-After.
//
//	tpserver -generate oahu -listen :8080 &
//	tploadgen -url http://127.0.0.1:8080 -rate 500 -duration 10s
//	tploadgen -url http://127.0.0.1:8080 -rate 2000 -duration 10s -json BENCH_serving.json
//
// -json writes the same numbers machine-readably (bench.ServingReport).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transit/internal/bench"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "tpserver base URL")
	rate := flag.Float64("rate", 100, "offered requests per second")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer load")
	stations := flag.Int("stations", 0, "station-ID space to draw from (0 = ask /v1/stations)")
	zipfS := flag.Float64("zipf-s", 1.4, "zipf skew of station popularity (> 1)")
	zipfV := flag.Float64("zipf-v", 1, "zipf offset (>= 1)")
	mixFlag := flag.String("mix", "arrival=6,journey=3,profile=1", "query mix as kind=weight,...")
	seed := flag.Int64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	flag.Parse()

	mix, err := bench.ParseMix(*mixFlag)
	check(err)
	rep, err := bench.RunServing(bench.ServingConfig{
		BaseURL:  *url,
		Rate:     *rate,
		Duration: *duration,
		Mix:      mix,
		Stations: *stations,
		ZipfS:    *zipfS,
		ZipfV:    *zipfV,
		Seed:     *seed,
		Timeout:  *timeout,
	})
	check(err)
	rep.Print(os.Stdout)
	if *jsonPath != "" {
		check(rep.WriteJSON(*jsonPath))
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tploadgen:", err)
		os.Exit(1)
	}
}

// Command tpgen generates a synthetic public transportation network in the
// library's text timetable format, or as a ready-to-serve snapshot.
//
// Usage:
//
//	tpgen -family losangeles -scale 1.0 -seed 42 -out la.tt
//	tpgen -family losangeles -preprocess 0.05 -o la.snap
//
// Families mirror the paper's five evaluation inputs: oahu, losangeles,
// washington (city bus grids) and germany, europe (railways).
//
// With -o, the network is written as a versioned snapshot container
// (docs/SNAPSHOT_FORMAT.md); add -preprocess to bake the transfer-station
// distance table in, so tpserver -snapshot boots query-ready in
// milliseconds with no preprocessing of its own.
//
// With -batch, tpgen builds a whole multi-network catalog directory for
// tpserver -catalog (docs/CATALOG.md) from a JSON config:
//
//	tpgen -batch fleet.json -dir ./catalog
//
//	{"default": "oahu",
//	 "networks": [
//	   {"name": "oahu", "family": "oahu", "scale": 0.25, "preprocess": 0.1},
//	   {"name": "losangeles", "family": "losangeles", "scale": 0.1}
//	 ]}
//
// Each entry generates (and optionally preprocesses) one network, writes
// <dir>/<name>.snap, and the run finishes by writing the catalog.json
// manifest naming them all.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"transit"
	"transit/internal/catalog"
)

func main() {
	family := flag.String("family", "oahu", "network family: oahu|losangeles|washington|germany|europe")
	scale := flag.Float64("scale", 1.0, "size multiplier (1.0 = laptop-friendly default)")
	seed := flag.Int64("seed", 0, "random seed (0 = family default)")
	out := flag.String("out", "", "timetable output file (default stdout)")
	binaryFmt := flag.Bool("binary", false, "write the compact binary format instead of text")
	snapOut := flag.String("o", "", "snapshot output file (versioned container; see docs/SNAPSHOT_FORMAT.md)")
	preprocess := flag.Float64("preprocess", 0, "with -o: transfer-station fraction for an embedded distance table (0 = none)")
	threads := flag.Int("threads", 1, "parallel workers for -preprocess")
	batch := flag.String("batch", "", "build a catalog directory from a JSON config (see docs/CATALOG.md)")
	dir := flag.String("dir", ".", "with -batch: catalog output directory")
	flag.Parse()

	if *batch != "" {
		if err := buildCatalog(*batch, *dir, *threads); err != nil {
			fail(err)
		}
		return
	}

	n, err := transit.Generate(*family, *scale, *seed)
	if err != nil {
		fail(err)
	}
	if *snapOut != "" {
		if *preprocess > 0 {
			start := time.Now()
			var ps *transit.PreprocessStats
			n, ps, err = n.Preprocess(transit.TransferSelection{Fraction: *preprocess}, transit.Options{Threads: *threads})
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "preprocessed %d transfer stations in %v (%.1f MiB table)\n",
				ps.TransferStations, time.Since(start).Round(time.Millisecond), float64(ps.TableBytes)/(1<<20))
		}
		f, err := os.Create(*snapOut)
		if err != nil {
			fail(err)
		}
		err = n.WriteSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		if fi, err := os.Stat(*snapOut); err == nil {
			fmt.Fprintf(os.Stderr, "snapshot %s: %.1f MiB\n", *snapOut, float64(fi.Size())/(1<<20))
		}
		if *out == "" {
			fmt.Fprintln(os.Stderr, n.Stats())
			return
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	write := n.WriteTimetable
	if *binaryFmt {
		write = n.WriteTimetableBinary
	}
	if err := write(w); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, n.Stats())
}

// batchConfig is the -batch input: the networks of the catalog and the
// default tenant (empty = first entry).
type batchConfig struct {
	Default  string         `json:"default,omitempty"`
	Networks []batchNetwork `json:"networks"`
}

type batchNetwork struct {
	Name       string  `json:"name"`
	Family     string  `json:"family"`
	Scale      float64 `json:"scale,omitempty"`      // 0 = 1.0
	Seed       int64   `json:"seed,omitempty"`       // 0 = family default
	Preprocess float64 `json:"preprocess,omitempty"` // transfer fraction; 0 = no table
}

// buildCatalog generates every network of the config, writes each as
// <dir>/<name>.snap, and finishes with the catalog.json manifest. Names
// are validated up front with the same grammar the serving catalog
// enforces, so a bad config fails before any generation work.
func buildCatalog(configPath, dir string, threads int) error {
	data, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg batchConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("%s: %w", configPath, err)
	}
	if len(cfg.Networks) == 0 {
		return fmt.Errorf("%s: no networks declared", configPath)
	}
	m := &catalog.Manifest{Default: cfg.Default}
	for i, bn := range cfg.Networks {
		if !catalog.ValidName(bn.Name) {
			return fmt.Errorf("%s: entry %d: invalid network name %q", configPath, i, bn.Name)
		}
		m.Networks = append(m.Networks, catalog.Entry{Name: bn.Name, Snapshot: bn.Name + ".snap"})
	}
	if _, err := catalog.ParseManifest(manifestJSON(m)); err != nil {
		return fmt.Errorf("%s: %w", configPath, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, bn := range cfg.Networks {
		scale := bn.Scale
		if scale == 0 {
			scale = 1.0
		}
		start := time.Now()
		n, err := transit.Generate(bn.Family, scale, bn.Seed)
		if err != nil {
			return fmt.Errorf("network %s: %w", bn.Name, err)
		}
		if bn.Preprocess > 0 {
			n, _, err = n.Preprocess(transit.TransferSelection{Fraction: bn.Preprocess},
				transit.Options{Threads: threads})
			if err != nil {
				return fmt.Errorf("network %s: %w", bn.Name, err)
			}
		}
		path := filepath.Join(dir, bn.Name+".snap")
		if err := writeSnapshotFile(n, path); err != nil {
			return fmt.Errorf("network %s: %w", bn.Name, err)
		}
		fi, _ := os.Stat(path)
		fmt.Fprintf(os.Stderr, "catalog %s: %s (%.1f MiB, %v)\n",
			bn.Name, n.Stats(), float64(fi.Size())/(1<<20), time.Since(start).Round(time.Millisecond))
	}
	if err := catalog.WriteManifest(dir, m); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "catalog manifest: %s (%d networks)\n",
		filepath.Join(dir, catalog.ManifestFile), len(m.Networks))
	return nil
}

// manifestJSON renders a manifest for pre-validation (WriteManifest does
// the same before touching disk; doing it first keeps generation work
// behind a valid config).
func manifestJSON(m *catalog.Manifest) []byte {
	data, err := json.Marshal(m)
	if err != nil {
		return nil
	}
	return data
}

func writeSnapshotFile(n *transit.Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = n.WriteSnapshot(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tpgen:", err)
	os.Exit(1)
}

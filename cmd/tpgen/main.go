// Command tpgen generates a synthetic public transportation network in the
// library's text timetable format, or as a ready-to-serve snapshot.
//
// Usage:
//
//	tpgen -family losangeles -scale 1.0 -seed 42 -out la.tt
//	tpgen -family losangeles -preprocess 0.05 -o la.snap
//
// Families mirror the paper's five evaluation inputs: oahu, losangeles,
// washington (city bus grids) and germany, europe (railways).
//
// With -o, the network is written as a versioned snapshot container
// (docs/SNAPSHOT_FORMAT.md); add -preprocess to bake the transfer-station
// distance table in, so tpserver -snapshot boots query-ready in
// milliseconds with no preprocessing of its own.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transit"
)

func main() {
	family := flag.String("family", "oahu", "network family: oahu|losangeles|washington|germany|europe")
	scale := flag.Float64("scale", 1.0, "size multiplier (1.0 = laptop-friendly default)")
	seed := flag.Int64("seed", 0, "random seed (0 = family default)")
	out := flag.String("out", "", "timetable output file (default stdout)")
	binaryFmt := flag.Bool("binary", false, "write the compact binary format instead of text")
	snapOut := flag.String("o", "", "snapshot output file (versioned container; see docs/SNAPSHOT_FORMAT.md)")
	preprocess := flag.Float64("preprocess", 0, "with -o: transfer-station fraction for an embedded distance table (0 = none)")
	threads := flag.Int("threads", 1, "parallel workers for -preprocess")
	flag.Parse()

	n, err := transit.Generate(*family, *scale, *seed)
	if err != nil {
		fail(err)
	}
	if *snapOut != "" {
		if *preprocess > 0 {
			start := time.Now()
			var ps *transit.PreprocessStats
			n, ps, err = n.Preprocess(transit.TransferSelection{Fraction: *preprocess}, transit.Options{Threads: *threads})
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "preprocessed %d transfer stations in %v (%.1f MiB table)\n",
				ps.TransferStations, time.Since(start).Round(time.Millisecond), float64(ps.TableBytes)/(1<<20))
		}
		f, err := os.Create(*snapOut)
		if err != nil {
			fail(err)
		}
		err = n.WriteSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		if fi, err := os.Stat(*snapOut); err == nil {
			fmt.Fprintf(os.Stderr, "snapshot %s: %.1f MiB\n", *snapOut, float64(fi.Size())/(1<<20))
		}
		if *out == "" {
			fmt.Fprintln(os.Stderr, n.Stats())
			return
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	write := n.WriteTimetable
	if *binaryFmt {
		write = n.WriteTimetableBinary
	}
	if err := write(w); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, n.Stats())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tpgen:", err)
	os.Exit(1)
}

// Command tpgen generates a synthetic public transportation network in the
// library's text timetable format.
//
// Usage:
//
//	tpgen -family losangeles -scale 1.0 -seed 42 -out la.tt
//
// Families mirror the paper's five evaluation inputs: oahu, losangeles,
// washington (city bus grids) and germany, europe (railways).
package main

import (
	"flag"
	"fmt"
	"os"

	"transit"
)

func main() {
	family := flag.String("family", "oahu", "network family: oahu|losangeles|washington|germany|europe")
	scale := flag.Float64("scale", 1.0, "size multiplier (1.0 = laptop-friendly default)")
	seed := flag.Int64("seed", 0, "random seed (0 = family default)")
	out := flag.String("out", "", "output file (default stdout)")
	binaryFmt := flag.Bool("binary", false, "write the compact binary format instead of text")
	flag.Parse()

	n, err := transit.Generate(*family, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	write := n.WriteTimetable
	if *binaryFmt {
		write = n.WriteTimetableBinary
	}
	if err := write(w); err != nil {
		fmt.Fprintln(os.Stderr, "tpgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, n.Stats())
}

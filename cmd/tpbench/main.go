// Command tpbench regenerates the paper's evaluation tables on synthetic
// analogues of its five inputs (see DESIGN.md §2 for the substitution
// rationale and §4 for the experiment index).
//
//	tpbench -table 1                 # Table 1: one-to-all, CS vs LC, 1–8 cores
//	tpbench -table 2                 # Table 2: station-to-station + distance tables
//	tpbench -ablation partition      # partition-strategy balance
//	tpbench -ablation self-pruning   # Theorem 1 work reduction
//	tpbench -ablation heap           # binary vs 4-ary heap
//	tpbench -ablation stopping       # Theorem 2 work reduction
//	tpbench -ablation pareto         # multi-criteria extension cost
//	tpbench -serving http://127.0.0.1:8080 -rate 500 -duration 10s
//
// -families, -scale, -queries and -threads bound the run; defaults keep the
// full harness under a few minutes on a single core.
//
// -serving turns tpbench into a client of a running tpserver (the same
// engine as cmd/tploadgen): open-loop load at -rate for -duration,
// reporting throughput, latency percentiles, shed rate and cache hit rate;
// -json writes the machine-readable report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"transit/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (1 or 2)")
	ablation := flag.String("ablation", "", "ablation to run: partition|self-pruning|heap|stopping|pareto")
	familiesFlag := flag.String("families", strings.Join(bench.Families(), ","), "comma-separated families")
	scale := flag.Float64("scale", 0.25, "network scale (1.0 = DESIGN.md defaults; 0.25 keeps runs fast)")
	queries := flag.Int("queries", 10, "queries per configuration")
	threads := flag.Int("threads", 8, "threads for Table 2 queries")
	seed := flag.Int64("seed", 1, "workload seed")
	full := flag.Bool("full", false, "include the 30% selection row in Table 2")
	serving := flag.String("serving", "", "benchmark a running tpserver at this base URL")
	rate := flag.Float64("rate", 100, "offered requests per second for -serving")
	duration := flag.Duration("duration", 10*time.Second, "load duration for -serving")
	jsonPath := flag.String("json", "", "write the -serving report as JSON to this file")
	flag.Parse()

	families := strings.Split(*familiesFlag, ",")
	switch {
	case *serving != "":
		rep, err := bench.RunServing(bench.ServingConfig{
			BaseURL: *serving, Rate: *rate, Duration: *duration, Seed: *seed,
		})
		check(err)
		rep.Print(os.Stdout)
		if *jsonPath != "" {
			check(rep.WriteJSON(*jsonPath))
		}
	case *table == 1:
		for _, fam := range families {
			net := load(fam, *scale, *seed)
			rows, err := bench.Table1(net, []int{1, 2, 4, 8}, *queries, *seed, true)
			check(err)
			bench.PrintTable1(os.Stdout, rows)
			fmt.Println()
		}
	case *table == 2:
		for _, fam := range families {
			net := load(fam, *scale, *seed)
			rows, err := bench.Table2(net, bench.PaperSelections(*full), *queries, *threads, *seed)
			check(err)
			bench.PrintTable2(os.Stdout, rows)
			fmt.Println()
		}
	case *ablation != "":
		for _, fam := range families {
			net := load(fam, *scale, *seed)
			var rows []bench.AblationRow
			var err error
			switch *ablation {
			case "partition":
				rows, err = bench.AblationPartition(net, 4, *queries, *seed)
			case "self-pruning":
				rows, err = bench.AblationSelfPruning(net, *queries, *seed)
			case "heap":
				rows, err = bench.AblationHeap(net, *queries, *seed)
			case "stopping":
				rows, err = bench.AblationStopping(net, *queries, *seed)
			case "pareto":
				rows, err = bench.AblationPareto(net, []int{2, 4, 8}, *queries, *seed)
			default:
				check(fmt.Errorf("unknown ablation %q", *ablation))
			}
			check(err)
			bench.PrintAblation(os.Stdout, *ablation, rows)
			fmt.Println()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(family string, scale float64, seed int64) *bench.Network {
	net, err := bench.Load(strings.TrimSpace(family), scale, seed)
	check(err)
	fmt.Printf("# %s: %v\n", family, net.TT.Stats())
	return net
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpbench:", err)
		os.Exit(1)
	}
}

// Command tpquery answers queries against a timetable file.
//
// Usage:
//
//	tpquery -net la.tt -from "losangeles-3-4" -to "losangeles-10-2" -at 08:15
//	tpquery -net la.tt -from 12 -to 80 -profile
//	tpquery -net la.tt -gtfs feed/ -from 12 -to 80 -profile -threads 4
//	tpquery -net la.tt -from 12 -to 80 -at 08:15 -json
//
// Stations may be given by name or numeric ID. Without -profile the tool
// prints the earliest arrival for the departure time -at; with -profile it
// prints every relevant connection of the day; with -journeys the itinerary.
//
// Every mode builds a transit.Request and answers it through the unified
// Network.Plan entry point — the same path cmd/tpserver serves. With -json
// the output is the corresponding /v1 response struct of api/v1 (one
// serialization path, not two), so piping tpquery output and calling the
// HTTP API yield byte-compatible documents (docs/API.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"transit"
	apiv1 "transit/api/v1"
)

var jsonOut = false

func main() {
	netFile := flag.String("net", "", "timetable file (library text format)")
	gtfsDir := flag.String("gtfs", "", "GTFS feed directory (alternative to -net)")
	from := flag.String("from", "", "source station (name or ID)")
	to := flag.String("to", "", "target station (name or ID)")
	at := flag.String("at", "08:00", "departure time HH:MM for time queries")
	profile := flag.Bool("profile", false, "compute the full daily profile instead of one arrival")
	threads := flag.Int("threads", 1, "parallel worker goroutines for profile queries")
	preprocess := flag.Float64("preprocess", 0, "transfer-station fraction for distance-table pruning (0 = off)")
	journeys := flag.Bool("journeys", false, "print the itinerary for the chosen departure (one-to-all search)")
	jsonFlag := flag.Bool("json", false, "emit the /v1 API response structs as JSON (api/v1; docs/API.md)")
	flag.Parse()
	jsonOut = *jsonFlag

	n, err := loadNetwork(*netFile, *gtfsDir)
	if err != nil {
		fail(err)
	}
	src, err := station(n, *from)
	if err != nil {
		fail(err)
	}
	dst, err := station(n, *to)
	if err != nil {
		fail(err)
	}
	dep, err := transit.ParseClock(*at)
	if err != nil {
		fail(err)
	}
	opt := transit.Options{Threads: *threads}

	if *preprocess > 0 {
		var ps *transit.PreprocessStats
		n, ps, err = n.Preprocess(transit.TransferSelection{Fraction: *preprocess}, opt)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "preprocessed %d transfer stations in %v (%.1f MiB)\n",
			ps.TransferStations, ps.Elapsed, float64(ps.TableBytes)/(1<<20))
	}

	// Every mode is one Plan call; the flags only pick the request kind.
	req := transit.Request{From: src, To: dst, Options: opt}
	switch {
	case *journeys:
		req.Kind = transit.KindJourney
		req.Depart = dep
	case *profile:
		req.Kind = transit.KindProfile
	default:
		req.Kind = transit.KindEarliestArrival
		req.Depart = dep
	}
	res, err := n.Plan(context.Background(), req)
	if err != nil {
		fail(err)
	}

	switch req.Kind {
	case transit.KindJourney:
		if jsonOut {
			out, err := apiv1.NewJourneyResponse(n, req, res)
			if err != nil {
				fail(err)
			}
			emit(out)
			return
		}
		j, err := res.Journey()
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s → %s, departing after %s (%d transfers):\n",
			n.Station(src).Name, n.Station(dst).Name, n.FormatClock(dep), j.Transfers())
		for _, l := range j.Legs {
			fmt.Printf("  %-24s %s %s → %s %s (%d stops)\n",
				l.Train, l.FromName, n.FormatClock(l.Departure), l.ToName, n.FormatClock(l.Arrival), l.Stops)
		}
	case transit.KindProfile:
		if jsonOut {
			out, err := apiv1.NewProfileResponse(n, req, res)
			if err != nil {
				fail(err)
			}
			emit(out)
			return
		}
		p, err := res.Profile()
		if err != nil {
			fail(err)
		}
		st := res.Stats()
		fmt.Printf("%s → %s: %d relevant connections (settled %d labels in %v)\n",
			n.Station(src).Name, n.Station(dst).Name, len(p.Connections()), st.SettledConnections, st.Elapsed)
		for _, c := range p.Connections() {
			fmt.Printf("  dep %s  arr %s  (%d min)\n",
				n.FormatClock(c.Departure), n.FormatClock(c.Arrival), c.Arrival-c.Departure)
		}
	default:
		if jsonOut {
			out, err := apiv1.NewArrivalResponse(n, req, res)
			if err != nil {
				fail(err)
			}
			emit(out)
			return
		}
		arr, err := res.Arrival()
		if err != nil {
			fail(err)
		}
		if arr.IsInf() {
			fmt.Printf("%s → %s: unreachable\n", n.Station(src).Name, n.Station(dst).Name)
			return
		}
		fmt.Printf("%s → %s: depart %s, arrive %s (%d min)\n",
			n.Station(src).Name, n.Station(dst).Name, n.FormatClock(dep), n.FormatClock(arr), arr-dep)
	}
}

// emit writes one /v1 response document to stdout.
func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func loadNetwork(netFile, gtfsDir string) (*transit.Network, error) {
	switch {
	case netFile != "" && gtfsDir != "":
		return nil, fmt.Errorf("tpquery: -net and -gtfs are mutually exclusive")
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return transit.ReadNetwork(f)
	case gtfsDir != "":
		return transit.LoadGTFS(gtfsDir)
	default:
		return nil, fmt.Errorf("tpquery: one of -net or -gtfs is required")
	}
}

func station(n *transit.Network, s string) (transit.StationID, error) {
	if s == "" {
		return 0, fmt.Errorf("tpquery: -from and -to are required")
	}
	if id, ok := n.StationByName(s); ok {
		return id, nil
	}
	if v, err := strconv.Atoi(s); err == nil && v >= 0 && v < n.NumStations() {
		return transit.StationID(v), nil
	}
	return 0, &transit.Error{
		Code: transit.CodeUnknownStation, Field: "station",
		Message: fmt.Sprintf("unknown station %q", s),
	}
}

// fail reports the error — as the /v1 error envelope in -json mode, so
// scripted callers parse one format for success and failure alike.
func fail(err error) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		_ = enc.Encode(apiv1.NewErrorResponse(err))
	} else {
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(1)
}

package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"transit"
	apiv1 "transit/api/v1"
)

func tmpNetworkFile(t *testing.T) string {
	t.Helper()
	n, err := transit.Generate("oahu", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := n.WriteTimetable(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNetwork(t *testing.T) {
	path := tmpNetworkFile(t)
	n, err := loadNetwork(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumStations() == 0 {
		t.Fatal("empty network")
	}
	if _, err := loadNetwork("", ""); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := loadNetwork(path, "dir"); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadNetwork("/no/such/file", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadNetwork("", t.TempDir()); err == nil {
		t.Fatal("empty GTFS dir accepted")
	}
}

func TestStationLookup(t *testing.T) {
	path := tmpNetworkFile(t)
	n, err := loadNetwork(path, "")
	if err != nil {
		t.Fatal(err)
	}
	// By numeric ID.
	id, err := station(n, "3")
	if err != nil || id != 3 {
		t.Fatalf("by ID: %d, %v", id, err)
	}
	// By name.
	name := n.Station(5).Name
	id, err = station(n, name)
	if err != nil || id != 5 {
		t.Fatalf("by name: %d, %v", id, err)
	}
	// Errors.
	if _, err := station(n, ""); err == nil {
		t.Fatal("empty station accepted")
	}
	if _, err := station(n, "99999"); err == nil {
		t.Fatal("out-of-range ID accepted")
	}
	if _, err := station(n, "not a station"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestJSONSharedSerializationPath pins the -json contract: tpquery's JSON
// output is built by the same api/v1 constructors the /v1 HTTP endpoints
// use, so the documents match field for field.
func TestJSONSharedSerializationPath(t *testing.T) {
	path := tmpNetworkFile(t)
	n, err := loadNetwork(path, "")
	if err != nil {
		t.Fatal(err)
	}
	req := transit.Request{Kind: transit.KindEarliestArrival, From: 0, To: 5, Depart: 495}
	res, err := n.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := apiv1.NewArrivalResponse(n, req, res)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"from", "to", "depart", "reachable", "query_ms"} {
		if _, ok := doc[field]; !ok {
			t.Fatalf("missing field %q in %s", field, raw)
		}
	}
	arr, err := res.Arrival()
	if err != nil {
		t.Fatal(err)
	}
	if want := !arr.IsInf(); doc["reachable"] != want {
		t.Fatalf("reachable = %v, want %v", doc["reachable"], want)
	}
}

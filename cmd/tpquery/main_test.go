package main

import (
	"os"
	"path/filepath"
	"testing"

	"transit"
)

func tmpNetworkFile(t *testing.T) string {
	t.Helper()
	n, err := transit.Generate("oahu", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := n.WriteTimetable(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNetwork(t *testing.T) {
	path := tmpNetworkFile(t)
	n, err := loadNetwork(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumStations() == 0 {
		t.Fatal("empty network")
	}
	if _, err := loadNetwork("", ""); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := loadNetwork(path, "dir"); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadNetwork("/no/such/file", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadNetwork("", t.TempDir()); err == nil {
		t.Fatal("empty GTFS dir accepted")
	}
}

func TestStationLookup(t *testing.T) {
	path := tmpNetworkFile(t)
	n, err := loadNetwork(path, "")
	if err != nil {
		t.Fatal(err)
	}
	// By numeric ID.
	id, err := station(n, "3")
	if err != nil || id != 3 {
		t.Fatalf("by ID: %d, %v", id, err)
	}
	// By name.
	name := n.Station(5).Name
	id, err = station(n, name)
	if err != nil || id != 5 {
		t.Fatalf("by name: %d, %v", id, err)
	}
	// Errors.
	if _, err := station(n, ""); err == nil {
		t.Fatal("empty station accepted")
	}
	if _, err := station(n, "99999"); err == nil {
		t.Fatal("out-of-range ID accepted")
	}
	if _, err := station(n, "not a station"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

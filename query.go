package transit

import (
	"context"
	"fmt"
	"time"

	"transit/internal/core"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// Options tunes query execution. The zero value is a sensible default: one
// thread, equal-connections partitioning, self-pruning enabled.
type Options struct {
	// Threads is the number of parallel workers (goroutines) the profile
	// search partitions conn(S) over; values < 1 mean 1.
	Threads int
	// Partition chooses the partition strategy: "equal-connections"
	// (default), "equal-time-slots", or "k-means".
	Partition string
	// TrackJourneys records parent links so Journey can reconstruct
	// itineraries (slightly more memory per query).
	TrackJourneys bool
	// PreprocessWorkers bounds how many distance-table rows (source
	// stations) Preprocess/Repreprocess computes concurrently; values < 1
	// mean 1, the paper's setup, where parallelism lives inside each
	// one-to-all run (Threads). Workers pull rows from a shared chunked
	// queue and each reuses one pooled search workspace.
	PreprocessWorkers int
	// RepairMaxDirty is the dirty-row fraction above which Repreprocess
	// falls back to a full rebuild; 0 means RepairMaxDirtyDefault, negative
	// values always rebuild.
	RepairMaxDirty float64
	// Effort, when non-nil, receives the query's search-work counters
	// (connections scanned, labels settled, priority-queue traffic). The
	// block is caller-owned and atomic, so one Effort can be shared across
	// the worker goroutines of a matrix or parallel profile query. Nil —
	// the default — costs nothing.
	Effort *SearchEffort
}

// sourceParallelism returns the effective PreprocessWorkers value.
func (o Options) sourceParallelism() int {
	if o.PreprocessWorkers < 1 {
		return 1
	}
	return o.PreprocessWorkers
}

func (o Options) core() core.Options {
	c := core.Options{Threads: o.Threads, TrackParents: o.TrackJourneys, Effort: o.Effort}
	switch o.Partition {
	case "", "equal-connections":
		c.Partition = core.EqualConnections
	case "equal-time-slots":
		c.Partition = core.EqualTimeSlots
	case "k-means":
		c.Partition = core.KMeans
	default:
		// Unknown names fail core.Options validation with a clear error.
		c.Partition = core.PartitionStrategy(-1)
	}
	return c
}

// Profile is the travel-time profile between two stations: for every
// departure time of the period, the best connection. It wraps the reduced
// piecewise-linear distance function dist(S, T, ·).
type Profile struct {
	Source, Target StationID
	fn             *ttf.Function
	period         timeutil.Period
	// walkOnly is the pure walking time over footpaths (Infinity when not
	// walkable); factored into EarliestArrival/TravelTime.
	walkOnly Ticks
}

// ConnectionPoint is one relevant departure of a profile.
type ConnectionPoint struct {
	Departure Ticks // departure time point at the source
	Arrival   Ticks // absolute arrival time at the target
}

// Connections lists the profile's relevant departures in departure order —
// exactly the connections a travel-information system would display for
// "all day".
func (p *Profile) Connections() []ConnectionPoint {
	pts := p.fn.Points()
	out := make([]ConnectionPoint, len(pts))
	for i, pt := range pts {
		out[i] = ConnectionPoint{Departure: pt.Dep, Arrival: pt.Arr()}
	}
	return out
}

// EarliestArrival returns the earliest arrival when departing at the
// absolute time dep, or Infinity if the target is unreachable.
func (p *Profile) EarliestArrival(dep Ticks) Ticks {
	if p.Source == p.Target {
		return dep
	}
	best := Infinity
	if !p.walkOnly.IsInf() {
		best = dep + p.walkOnly
	}
	if a := p.fn.EvalArrival(dep); a < best {
		best = a
	}
	return best
}

// TravelTime returns the door-to-door travel time (wait + ride) when
// departing at dep.
func (p *Profile) TravelTime(dep Ticks) Ticks {
	if p.Source == p.Target {
		return 0
	}
	a := p.EarliestArrival(dep)
	if a.IsInf() {
		return Infinity
	}
	return a - dep
}

// NextDeparture returns the best connection point for a traveler present at
// the source at time dep, with the wait until boarding.
func (p *Profile) NextDeparture(dep Ticks) (ConnectionPoint, Ticks, error) {
	if p.fn.Empty() {
		return ConnectionPoint{}, Infinity, fmt.Errorf("transit: %d→%d unreachable", p.Source, p.Target)
	}
	pt, wait := p.fn.NextDeparture(dep)
	return ConnectionPoint{Departure: pt.Dep, Arrival: pt.Arr()}, wait, nil
}

// WalkOnly returns the pure walking time between the endpoints over
// footpaths, or Infinity when not walkable.
func (p *Profile) WalkOnly() Ticks { return p.walkOnly }

// Empty reports whether the target is unreachable at all times (not even
// on foot).
func (p *Profile) Empty() bool { return p.fn.Empty() && p.walkOnly.IsInf() }

// QueryStats reports the work of one query, mirroring the paper's metrics.
type QueryStats struct {
	// SettledConnections is the number of (node, connection) labels settled
	// (summed over threads).
	SettledConnections int64
	// MaxThreadSettled is the critical-path work of the slowest thread.
	MaxThreadSettled int64
	// QueueOps counts pushes plus pops.
	QueueOps int64
	// Elapsed is the query wall time.
	Elapsed time.Duration
	// Local/TableHit report the station-to-station query classification.
	Local    bool
	TableHit bool
}

// PreprocessStats reports the cost of distance-table preprocessing,
// matching the Prepro columns of the paper's Table 2, plus the outcome of
// an incremental Repreprocess.
type PreprocessStats struct {
	TransferStations int
	Elapsed          time.Duration
	// TableBytes estimates the stored profiles' footprint (the paper's
	// table-size figure); ProvenanceBytes the repair provenance recorded
	// next to them (zero for repaired/derived tables' recomputed rows and
	// for provenance-less tables).
	TableBytes      int64
	ProvenanceBytes int64
	// Rows is the table's row count; RowsRepaired how many of them were
	// recomputed (all of them for Preprocess or a repair fallback).
	Rows         int
	RowsRepaired int
	// DirtyByUsed/DirtyBySeed/DirtyByArc break a repair's recomputed rows
	// down by the dirty rule that fired: a touched train ridden by a
	// recorded optimal journey, a touched seed station, or an
	// improvement-arc hit.
	DirtyByUsed int
	DirtyBySeed int
	DirtyByArc  int
	// RowsWindowed counts repaired rows recomputed with the interval
	// profile search over the batch's departure window (and spliced into
	// the old entries) instead of a full-period one-to-all run.
	RowsWindowed int
	// FullRebuild reports that every row was recomputed from scratch; after
	// a Repreprocess this means the result is a fresh repair base. Fallback
	// carries the reason when a requested repair was not possible.
	FullRebuild bool
	Fallback    string
}

// EarliestArrival answers a plain time-query: the earliest arrival at dst
// when departing src at dep. Only a scalar escapes, so the query runs on a
// pooled workspace and the steady state allocates nothing.
//
// It is a convenience wrapper over Plan with KindEarliestArrival; use Plan
// directly to thread a context.Context through the search.
func (n *Network) EarliestArrival(src, dst StationID, dep Ticks, opt Options) (Ticks, error) {
	r := planResults.Get().(*Result)
	defer planResults.Put(r)
	res, err := n.Plan(context.Background(), Request{
		Kind: KindEarliestArrival, From: src, To: dst, Depart: dep, Options: opt, Reuse: r,
	})
	if err != nil {
		return Infinity, err
	}
	return res.arrival, nil
}

// Profile answers a station-to-station profile query: all best connections
// from src to dst over the whole period. With a preprocessed Network the
// query uses the distance-table prunings; otherwise the stopping criterion
// alone.
//
// It is a convenience wrapper over Plan with KindProfile; use Plan directly
// to thread a context.Context through the search.
func (n *Network) Profile(src, dst StationID, opt Options) (*Profile, *QueryStats, error) {
	r := planResults.Get().(*Result)
	defer planResults.Put(r)
	res, err := n.Plan(context.Background(), Request{Kind: KindProfile, From: src, To: dst, Options: opt, Reuse: r})
	if err != nil {
		return nil, nil, err
	}
	st := res.stats
	return res.profile, &st, nil
}

// Journey computes a concrete itinerary from src to dst for a departure at
// dep. It runs a one-to-all profile search with parent tracking; when many
// journeys from the same source are needed, run ProfileAll once with
// Options.TrackJourneys and call Journey on the result instead.
// (Station-to-station searches with distance-table pruning do not retain
// full paths — pruned subtrees are exactly what the table replaces — so
// journeys always come from the unpruned one-to-all search.)
//
// It is a convenience wrapper over Plan with KindJourney; use Plan directly
// to thread a context.Context through the search.
func (n *Network) Journey(src, dst StationID, dep Ticks, opt Options) (*Journey, error) {
	r := planResults.Get().(*Result)
	defer planResults.Put(r)
	res, err := n.Plan(context.Background(), Request{Kind: KindJourney, From: src, To: dst, Depart: dep, Options: opt, Reuse: r})
	if err != nil {
		return nil, err
	}
	return res.journey, nil
}

// ProfileAll runs the one-to-all profile search from src: all best
// connections of the period to every station in a single (parallel) run.
//
// It is a convenience wrapper over Plan with KindOneToAll; use Plan
// directly to thread a context.Context through the search.
func (n *Network) ProfileAll(src StationID, opt Options) (*AllProfiles, error) {
	r := planResults.Get().(*Result)
	defer planResults.Put(r)
	res, err := n.Plan(context.Background(), Request{Kind: KindOneToAll, From: src, Options: opt, Reuse: r})
	if err != nil {
		return nil, err
	}
	return res.all, nil
}

// ProfileAllWindow restricts the one-to-all profile search to departures
// within [from, to] (Dean's interval search, referenced in the paper's
// related work): all best connections leaving src in the window, to every
// station, at a fraction of the full-period work.
//
// It is a convenience wrapper over Plan with KindOneToAll and a Window; use
// Plan directly to thread a context.Context through the search.
func (n *Network) ProfileAllWindow(src StationID, from, to Ticks, opt Options) (*AllProfiles, error) {
	r := planResults.Get().(*Result)
	defer planResults.Put(r)
	res, err := n.Plan(context.Background(), Request{
		Kind: KindOneToAll, From: src, Window: &Window{From: from, To: to}, Options: opt, Reuse: r,
	})
	if err != nil {
		return nil, err
	}
	return res.all, nil
}

// AllProfiles is the result of a one-to-all profile search.
type AllProfiles struct {
	n   *Network
	res *core.ProfileResult
}

// Source returns the search's source station.
func (a *AllProfiles) Source() StationID { return a.res.Source }

// Stats returns the work counters of the run.
func (a *AllProfiles) Stats() QueryStats {
	return QueryStats{
		SettledConnections: a.res.Run.Total.SettledConns,
		MaxThreadSettled:   a.res.Run.MaxThreadSettled(),
		QueueOps:           a.res.Run.Total.QueuePushes + a.res.Run.Total.QueuePops,
		Elapsed:            a.res.Run.Elapsed,
	}
}

// To extracts the profile to one target station.
func (a *AllProfiles) To(dst StationID) (*Profile, error) {
	if err := a.n.checkStation(dst); err != nil {
		return nil, err
	}
	fn, err := a.res.StationProfile(dst)
	if err != nil {
		return nil, err
	}
	return &Profile{Source: a.res.Source, Target: dst, fn: fn, period: a.n.tt.Period, walkOnly: a.res.WalkOnly(dst)}, nil
}

// EarliestArrival evaluates the profile to dst at departure time dep.
func (a *AllProfiles) EarliestArrival(dst StationID, dep Ticks) Ticks {
	return a.res.EarliestArrival(dst, dep)
}

// Journey reconstructs the itinerary to dst for a departure at dep. The
// search must have been run with Options.TrackJourneys.
func (a *AllProfiles) Journey(dst StationID, dep Ticks) (*Journey, error) {
	if err := a.n.checkStation(dst); err != nil {
		return nil, err
	}
	fn, err := a.res.StationProfile(dst)
	if err != nil {
		return nil, err
	}
	if fn.Empty() {
		return nil, fmt.Errorf("transit: %d→%d unreachable", a.res.Source, dst)
	}
	pt, _ := fn.NextDeparture(dep)
	// Find the connection index whose departure point and duration realize
	// this profile point.
	idx := -1
	for i, d := range a.res.Deps {
		if d != pt.Dep {
			continue
		}
		arr := a.res.StationArrival(dst, i)
		if !arr.IsInf() && arr-d == pt.W {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("transit: internal error: profile point (%d,%d) has no matching label", pt.Dep, pt.W)
	}
	rides, err := a.res.JourneyConnections(dst, idx)
	if err != nil {
		return nil, err
	}
	return a.n.journeyFromConnections(rides, dep)
}

func (n *Network) checkStation(s StationID) error {
	if int(s) < 0 || int(s) >= n.tt.NumStations() {
		return errf(CodeStationRange, "station", "station %d out of range [0,%d)", s, n.tt.NumStations())
	}
	return nil
}

// journeyFromConnections groups ridden elementary connections into legs.
func (n *Network) journeyFromConnections(rides []timetable.ConnID, requestedDep Ticks) (*Journey, error) {
	if len(rides) == 0 {
		return nil, fmt.Errorf("transit: empty journey")
	}
	j := &Journey{RequestedDeparture: requestedDep}
	var cur *Leg
	for _, id := range rides {
		c := n.tt.Connections[id]
		if cur == nil || cur.train != c.Train {
			if cur != nil {
				j.Legs = append(j.Legs, *cur)
			}
			cur = &Leg{
				train:     c.Train,
				Train:     n.tt.Trains[c.Train].Name,
				From:      c.From,
				FromName:  n.tt.Stations[c.From].Name,
				Departure: c.Dep,
			}
		}
		cur.To = c.To
		cur.ToName = n.tt.Stations[c.To].Name
		cur.Arrival = c.Arr
		cur.Stops++
	}
	j.Legs = append(j.Legs, *cur)
	return j, nil
}

// Journey is a reconstructed itinerary: a sequence of train legs with
// transfers between them.
type Journey struct {
	RequestedDeparture Ticks
	Legs               []Leg
}

// Leg is one train ride within a journey.
type Leg struct {
	train     timetable.TrainID
	Train     string
	From      StationID
	FromName  string
	To        StationID
	ToName    string
	Departure Ticks // departure time point at From
	Arrival   Ticks // absolute arrival time at To
	Stops     int   // number of elementary connections ridden
}

// Transfers returns the number of train changes.
func (j *Journey) Transfers() int { return len(j.Legs) - 1 }

// String renders the journey compactly.
func (j *Journey) String() string {
	s := ""
	for i, l := range j.Legs {
		if i > 0 {
			s += " ⇄ "
		}
		s += fmt.Sprintf("%s (%s %d→%d)", l.Train, l.FromName, l.Departure, l.Arrival)
	}
	return s
}

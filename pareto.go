package transit

import (
	"context"

	"transit/internal/core"
)

// ParetoChoice is one point of the arrival-time / number-of-transfers
// Pareto frontier for a given departure.
type ParetoChoice struct {
	Transfers int
	Arrival   Ticks
}

// ParetoProfiles is the result of a multi-criteria one-to-all profile
// search: for every station, the full Pareto trade-off between arrival
// time and number of transfers, for all departure times at once.
type ParetoProfiles struct {
	n   *Network
	res *core.ParetoResult
}

// ProfileAllPareto runs the multi-criteria one-to-all profile search from
// src, minimizing arrival time and number of transfers simultaneously up
// to maxTransfers (the paper's future-work extension; see
// internal/core.OneToAllPareto for the layered connection-setting scheme).
//
// It is a convenience wrapper over Plan with KindPareto; use Plan directly
// to thread a context.Context through the search.
func (n *Network) ProfileAllPareto(src StationID, maxTransfers int, opt Options) (*ParetoProfiles, error) {
	r := planResults.Get().(*Result)
	defer planResults.Put(r)
	res, err := n.Plan(context.Background(), Request{
		Kind: KindPareto, From: src, MaxTransfers: maxTransfers, Options: opt, Reuse: r,
	})
	if err != nil {
		return nil, err
	}
	return res.pareto, nil
}

// Source returns the search's source station.
func (p *ParetoProfiles) Source() StationID { return p.res.Source }

// MaxTransfers returns the search's transfer budget.
func (p *ParetoProfiles) MaxTransfers() int { return p.res.MaxTransfers }

// Stats returns the work counters of the run.
func (p *ParetoProfiles) Stats() QueryStats {
	return QueryStats{
		SettledConnections: p.res.Run.Total.SettledConns,
		MaxThreadSettled:   p.res.Run.MaxThreadSettled(),
		QueueOps:           p.res.Run.Total.QueuePushes + p.res.Run.Total.QueuePops,
		Elapsed:            p.res.Run.Elapsed,
	}
}

// Choices returns the Pareto frontier for traveling to dst when departing
// at dep: each entry needs one more transfer and arrives strictly earlier
// than the previous. Empty means dst is unreachable within the budget.
func (p *ParetoProfiles) Choices(dst StationID, dep Ticks) ([]ParetoChoice, error) {
	if err := p.n.checkStation(dst); err != nil {
		return nil, err
	}
	set, err := p.res.ParetoSet(dst, dep)
	if err != nil {
		return nil, err
	}
	out := make([]ParetoChoice, len(set))
	for i, c := range set {
		out[i] = ParetoChoice{Transfers: c.Transfers, Arrival: c.Arrival}
	}
	return out, nil
}

// To extracts the profile to dst under a transfer budget u (arrivals using
// at most u transfers).
func (p *ParetoProfiles) To(dst StationID, u int) (*Profile, error) {
	if err := p.n.checkStation(dst); err != nil {
		return nil, err
	}
	fn, err := p.res.StationProfile(dst, u)
	if err != nil {
		return nil, err
	}
	return &Profile{Source: p.res.Source, Target: dst, fn: fn, period: p.n.tt.Period, walkOnly: p.res.WalkOnly(dst)}, nil
}
